"""End-to-end tests for the asyncio HTTP query service.

A real server is bound to an ephemeral port and driven over real sockets
with ``urllib``: queries, a delta push, an epoch reset, and every error
path.  The semantic check is differential — after the pushes, every HTTP
answer set must equal a cold recompute
(:func:`evaluate_under_entailment` over the accumulated graph).
"""

import asyncio
import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.service import QueryService
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import evaluate_under_entailment
from repro.workloads.ontologies import university_graph

QUERY_TEXTS = (
    "SELECT ?X WHERE { ?X rdf:type Person }",
    "SELECT ?X WHERE { ?X rdf:type Student }",
    "SELECT ?X WHERE { ?X worksFor _:B }",
    "SELECT ?X ?Y WHERE { ?X takesCourse ?Y }",
)

PUSHES = (
    [["maria", "rdf:type", "Student"], ["maria", "takesCourse", "course_0_0"]],
    [["noel", "rdf:type", "Professor"]],
)


class ServiceClient:
    """A tiny blocking HTTP client against a server run on a daemon thread."""

    def __init__(self, graph):
        self.service = QueryService(graph, port=0, reader_threads=2)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.service.start())
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        started.wait(timeout=30)
        self.base = f"http://127.0.0.1:{self.service.port}"

    def get(self, path):
        with urllib.request.urlopen(self.base + path, timeout=60) as response:
            return json.loads(response.read())

    def post(self, path, document):
        request = urllib.request.Request(
            self.base + path, data=json.dumps(document).encode(), method="POST"
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read())

    def query(self, text, mode="U"):
        return self.get(f"/query?q={urllib.parse.quote(text)}&mode={mode}")

    def close(self):
        asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop).result(30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)


@pytest.fixture(scope="module")
def client():
    graph = university_graph(n_departments=1, students_per_department=3)
    service_client = ServiceClient(graph)
    service_client.graph = graph
    yield service_client
    service_client.close()


def oracle_rows(query_text, graph, mode):
    """The translated-engine answers, serialized the way the service does."""
    answers = evaluate_under_entailment(parse_sparql(query_text), graph, mode)
    rows = [
        {variable.name: constant.value for variable, constant in mapping.items()}
        for mapping in answers
    ]
    rows.sort(key=lambda row: sorted(row.items()))
    return rows


class TestEndToEnd:
    def test_healthz(self, client):
        health = client.get("/healthz")
        assert health["status"] == "ok"
        assert health["consistent"] is True
        assert health["watermark"] > 0

    def test_02_initial_answers_match_oracle(self, client):
        for text in QUERY_TEXTS:
            for mode in ("U", "All"):
                response = client.query(text, mode)
                assert response["answers"] == oracle_rows(
                    text, client.graph, mode
                ), (text, mode)
                assert response["cardinality"] == len(response["answers"])

    def test_03_pushes_then_answers_match_cold_recompute(self, client):
        watermark = client.get("/healthz")["watermark"]
        accumulated = client.graph.copy()
        for batch in PUSHES:
            response = client.post("/push", {"triples": batch})
            assert response["consistent"] is True
            assert response["watermark"] > watermark
            watermark = response["watermark"]
            accumulated.add_all(tuple(entry) for entry in batch)
        for text in QUERY_TEXTS:
            for mode in ("U", "All"):
                response = client.query(text, mode)
                assert response["answers"] == oracle_rows(
                    text, accumulated, mode
                ), (text, mode)
                assert response["watermark"] == watermark
        client.accumulated = accumulated

    def test_03b_retract_then_answers_match_cold_recompute(self, client):
        accumulated = client.accumulated
        batch = PUSHES[0]
        response = client.post("/retract", {"triples": batch})
        assert response["removed_edb"] == len(batch)
        assert response["overdeleted"] >= len(batch)
        for entry in batch:
            accumulated.discard(tuple(entry))
        for text in QUERY_TEXTS:
            for mode in ("U", "All"):
                answer = client.query(text, mode)
                assert answer["answers"] == oracle_rows(
                    text, accumulated, mode
                ), (text, mode)
        # Push the batch back so the later ordered tests see the full state.
        client.post("/push", {"triples": batch})
        for entry in batch:
            accumulated.add(tuple(entry))

    def test_04_rematerialize_preserves_answers(self, client):
        before = {text: client.query(text)["answers"] for text in QUERY_TEXTS}
        epoch = client.get("/healthz")["epoch"]
        response = client.post("/rematerialize", {})
        assert response["epoch"] == epoch + 1
        for text in QUERY_TEXTS:
            after = client.query(text)
            assert after["answers"] == before[text]
            assert after["epoch"] == epoch + 1

    def test_05_stats_counts_traffic(self, client):
        stats = client.get("/stats")
        # The push batches, plus the re-push at the end of the retract test.
        assert stats["pushes"] == len(PUSHES) + 1
        assert stats["retractions"] == 1
        assert stats["queries_served"] > 0
        assert stats["term_table"]["constants"] > 0

    def test_keep_alive_reuses_connection(self, client):
        # urllib opens a fresh connection per call; exercise keep-alive
        # explicitly with one raw socket carrying two requests.
        import socket

        with socket.create_connection(("127.0.0.1", client.service.port)) as sock:
            for _ in range(2):
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                data = b""
                while b"\r\n\r\n" not in data:
                    data += sock.recv(65536)
                head, _, rest = data.partition(b"\r\n\r\n")
                length = int(
                    [l for l in head.split(b"\r\n") if l.lower().startswith(b"content-length")][0]
                    .split(b":")[1]
                )
                while len(rest) < length:
                    rest += sock.recv(65536)
                assert json.loads(rest[:length])["status"] == "ok"


class TestErrorPaths:
    def _expect(self, client, status, call):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call()
        assert excinfo.value.status == status
        return json.loads(excinfo.value.read())

    def test_missing_query(self, client):
        body = self._expect(client, 400, lambda: client.get("/query"))
        assert "missing query" in body["error"]

    def test_bad_sparql(self, client):
        body = self._expect(client, 400, lambda: client.query("NOT SPARQL"))
        assert "parse error" in body["error"]

    def test_bad_mode(self, client):
        quoted = urllib.parse.quote(QUERY_TEXTS[0])
        body = self._expect(
            client, 400, lambda: client.get(f"/query?q={quoted}&mode=Z")
        )
        assert "mode" in body["error"]

    def test_unknown_endpoint(self, client):
        self._expect(client, 404, lambda: client.get("/missing"))

    def test_method_not_allowed(self, client):
        self._expect(client, 405, lambda: client.post("/query", {}))

    def test_malformed_push_body(self, client):
        body = self._expect(
            client, 400, lambda: client.post("/push", {"triples": [["just", "two"]]})
        )
        assert "triple" in body["error"]

    def test_push_not_json(self, client):
        def call():
            request = urllib.request.Request(
                client.base + "/push", data=b"not json", method="POST"
            )
            with urllib.request.urlopen(request, timeout=30):
                pass

        body = self._expect(client, 400, call)
        assert "JSON" in body["error"]
