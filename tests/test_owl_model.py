"""Tests for the OWL 2 QL core ontology model."""

from repro.datalog.terms import Constant
from repro.owl.model import (
    ClassAssertion,
    ExistentialClass,
    InverseProperty,
    NamedClass,
    NamedProperty,
    Ontology,
    SubClassOf,
    inverse,
    some,
)


class TestBasicEntities:
    def test_inverse_is_involutive(self):
        assert inverse(inverse("p")) == NamedProperty("p")
        assert inverse("p") == InverseProperty("p")

    def test_some_builds_existential_class(self):
        assert some("eats") == ExistentialClass(NamedProperty("eats"))
        assert some(inverse("eats")).property.is_inverse

    def test_str_forms(self):
        assert str(inverse("p")) == "p-"
        assert str(some("p")) == "∃p"
        assert str(NamedClass("Person")) == "Person"


class TestOntology:
    def test_builder_methods_register_vocabulary(self):
        ontology = Ontology()
        ontology.sub_class("Student", "Person")
        ontology.sub_property("headOf", "worksFor")
        ontology.assert_class("Student", "alice")
        ontology.assert_property("worksFor", "alice", "uni")
        assert NamedClass("Student") in ontology.classes
        assert NamedClass("Person") in ontology.classes
        assert NamedProperty("headOf") in ontology.properties
        assert NamedProperty("worksFor") in ontology.properties

    def test_existential_axiom_registers_property(self):
        ontology = Ontology()
        ontology.sub_class("Animal", some("eats"))
        assert NamedProperty("eats") in ontology.properties

    def test_tbox_abox_partition(self):
        ontology = Ontology()
        ontology.sub_class("A", "B").assert_class("A", "x").assert_property("p", "x", "y")
        assert len(ontology.tbox()) == 1
        assert len(ontology.abox()) == 2

    def test_individuals(self):
        ontology = Ontology()
        ontology.assert_class("A", "x").assert_property("p", "y", "z")
        assert ontology.individuals() == {Constant("x"), Constant("y"), Constant("z")}

    def test_is_positive(self):
        ontology = Ontology()
        ontology.sub_class("A", "B")
        assert ontology.is_positive()
        ontology.disjoint_classes("A", "C")
        assert not ontology.is_positive()

    def test_axiom_equality(self):
        assert SubClassOf(NamedClass("A"), some("p")) == SubClassOf(NamedClass("A"), some("p"))
        assert ClassAssertion(NamedClass("A"), Constant("x")) != ClassAssertion(
            NamedClass("A"), Constant("y")
        )
