"""Tests for the synthetic workload generators."""

from repro.owl.rdf_mapping import ontology_to_graph
from repro.rdf.namespaces import OWL, RDFS
from repro.workloads.graphs import (
    chain_graph,
    layered_graph,
    paper_transport_graph,
    random_rdf_graph,
    random_undirected_graph,
    section2_g1,
    section2_g2,
    section2_g3,
    section2_g4,
    transport_network,
)
from repro.workloads.ontologies import (
    chain_basic_graph_pattern,
    chain_ontology,
    chain_ontology_graph,
    lubm_style_ontology,
    university_ontology,
)
from repro.workloads.queries import author_queries, random_bgp, random_pattern


class TestSection2Graphs:
    def test_g1_to_g4_shapes(self):
        assert len(section2_g1()) == 2
        assert len(section2_g2()) == 4
        assert len(section2_g3()) == 11
        assert len(section2_g4()) == 3

    def test_g3_contains_the_restriction_triples(self):
        graph = section2_g3()
        assert ("r1", RDFS.subClassOf, "r2") in graph
        assert ("r1", OWL.onProperty, "is_coauthor_of") in graph

    def test_transport_paper_figure(self):
        graph = paper_transport_graph()
        assert ("Oxford", "A311", "London") in graph
        assert len(graph) == 9


class TestTransportNetwork:
    def test_structure(self):
        graph, cities = transport_network(6, n_services=2, hierarchy_depth=3, seed=1)
        assert len(cities) == 6
        # every consecutive pair of cities is connected by some service
        service_triples = [t for t in graph if t.subject.value.startswith("city")]
        assert len(service_triples) == 5

    def test_deterministic_given_seed(self):
        first, _ = transport_network(5, seed=7)
        second, _ = transport_network(5, seed=7)
        assert first == second


class TestRandomGenerators:
    def test_random_rdf_graph_size_and_determinism(self):
        graph = random_rdf_graph(40, n_nodes=15, seed=3)
        assert len(graph) == 40
        assert graph == random_rdf_graph(40, n_nodes=15, seed=3)

    def test_random_undirected_graph_edge_probability_extremes(self):
        assert random_undirected_graph(5, 0.0, seed=1) == []
        assert len(random_undirected_graph(5, 1.0, seed=1)) == 10

    def test_random_bgp_and_pattern_are_valid(self):
        graph = random_rdf_graph(30, seed=2)
        bgp = random_bgp(graph, n_triples=3, seed=4)
        assert len(bgp.patterns) == 3
        pattern = random_pattern(graph, depth=2, seed=5)
        assert pattern.variables()


class TestChainOntologies:
    def test_chain_ontology_axioms(self):
        ontology = chain_ontology(4)
        assert len(ontology.axioms) == 3 + 3  # assertion + two existential-related + chain of 3
        graph = chain_ontology_graph(4)
        assert ("a0", RDFS.subClassOf, "some_p") in graph
        assert ("a3", RDFS.subClassOf, "a4") in graph

    def test_chain_pattern_mentions_all_classes(self):
        pattern = chain_basic_graph_pattern(3)
        objects = {p.object.value for p in pattern.patterns}
        assert objects == {"a1", "a2", "a3"}


class TestUniversityOntology:
    def test_scaling(self):
        small = university_ontology(n_departments=1, students_per_department=2)
        large = university_ontology(n_departments=3, students_per_department=10)
        assert len(large.axioms) > len(small.axioms)

    def test_positive_unless_requested(self):
        assert university_ontology().is_positive()
        assert not university_ontology(with_disjointness=True).is_positive()

    def test_graph_representation_parses_back(self):
        from repro.owl.rdf_mapping import graph_to_ontology

        ontology = university_ontology(n_departments=1, students_per_department=3)
        recovered = graph_to_ontology(ontology_to_graph(ontology))
        assert len(recovered.axioms) == len(ontology.axioms)


class TestScaleGraphs:
    def test_chain_graph_shape(self):
        graph = chain_graph(10)
        assert len(graph) == 10
        assert ("c0", "knows", "c1") in graph
        assert ("c9", "knows", "c10") in graph

    def test_chain_graph_branches(self):
        graph = chain_graph(5, branches_per_node=2)
        assert len(graph) == 5 + 5 * 2
        assert ("c3", "knows", "c3b1") in graph

    def test_layered_graph_edges_stay_between_adjacent_layers(self):
        graph = layered_graph(4, 6, out_degree=2, seed=9)
        for triple in graph:
            src_layer = int(triple.subject.value[1 : triple.subject.value.index("n")])
            dst_layer = int(triple.object.value[1 : triple.object.value.index("n")])
            assert dst_layer == src_layer + 1
        assert graph == layered_graph(4, 6, out_degree=2, seed=9)


class TestLubmStyleOntology:
    def test_scaling_across_universities(self):
        small = lubm_style_ontology(n_universities=1, departments_per_university=1)
        large = lubm_style_ontology(n_universities=3, departments_per_university=3)
        assert len(large.axioms) > len(small.axioms)
        assert small.is_positive()

    def test_deterministic_given_seed(self):
        first = lubm_style_ontology(n_universities=2, seed=4)
        second = lubm_style_ontology(n_universities=2, seed=4)
        assert ontology_to_graph(first) == ontology_to_graph(second)

    def test_graph_representation_parses_back(self):
        from repro.owl.rdf_mapping import graph_to_ontology

        ontology = lubm_style_ontology(
            n_universities=1, departments_per_university=1, students_per_department=4
        )
        recovered = graph_to_ontology(ontology_to_graph(ontology))
        assert len(recovered.axioms) == len(ontology.axioms)


class TestAuthorQueries:
    def test_queries_parse(self):
        from repro.sparql.parser import parse_sparql

        for text in author_queries().values():
            assert parse_sparql(text)


class TestStreams:
    def test_trickle_insert_chain_shapes(self):
        from repro.workloads.streams import trickle_insert_chain

        initial, feed = trickle_insert_chain(10, batches=4, edges_per_batch=2)
        assert len(initial) == 10
        assert len(feed) == 4 and all(len(batch) == 2 for batch in feed)
        # Batches continue the chain without gaps or overlaps.
        tips = [str(t.subject) for batch in feed for t in batch]
        assert tips == [f"c{10 + i}" for i in range(8)]

    def test_growing_university_stream_is_exact_diff(self):
        from repro.workloads.ontologies import lubm_style_graph
        from repro.workloads.streams import growing_university_stream

        initial, feed = growing_university_stream(
            3, departments_per_university=2, students_per_department=4
        )
        assert len(feed) == 2
        accumulated = set(initial)
        for batch in feed:
            assert not (set(batch) & accumulated)  # genuinely new triples
            accumulated.update(batch)
        full = set(
            lubm_style_graph(
                n_universities=3,
                departments_per_university=2,
                faculty_per_department=3,
                students_per_department=4,
                courses_per_department=4,
            )
        )
        assert accumulated == full

    def test_sliding_social_stream_evicts_exactly_the_departed_edges(self):
        from repro.workloads.streams import sliding_social_stream

        initial, feed = sliding_social_stream(
            initial_edges=50, batches=5, edges_per_batch=10, window=20, drift=10
        )
        live = {(str(t.subject), str(t.object)) for t in initial}
        seen = set(live)
        base = 0
        for inserts, deletes in feed:
            base += 10
            for triple in deletes:
                pair = (str(triple.subject), str(triple.object))
                assert pair in live  # only delivered, still-live edges evict
                live.discard(pair)
            for triple in inserts:
                pair = (str(triple.subject), str(triple.object))
                assert pair not in seen  # never re-delivered
                seen.add(pair)
                live.add(pair)
            # After the slide, every surviving edge sits inside the window.
            for subject, obj in live:
                for user in (int(subject[4:]), int(obj[4:])):
                    assert base <= user < base + 20
        assert any(deletes for _, deletes in feed)  # the window really slid

    def test_sliding_social_stream_insert_only_matches_churn_inserts(self):
        from repro.workloads.streams import sliding_social_stream

        scale = dict(
            initial_edges=50, batches=5, edges_per_batch=10, window=20, drift=10
        )
        initial, churn_feed = sliding_social_stream(**scale)
        legacy_initial, legacy_feed = sliding_social_stream(
            **scale, insert_only=True
        )
        # The compat flag restores the historical shape and, drawing from the
        # same seeded RNG, delivers exactly the churn stream's inserts.
        assert set(legacy_initial) == set(initial)
        assert legacy_feed == [inserts for inserts, _ in churn_feed]

    def test_churn_heavy_social_stream_deletes_comparably_to_inserts(self):
        from repro.workloads.streams import churn_heavy_social_stream

        initial, feed = churn_heavy_social_stream(
            initial_edges=60, batches=6, edges_per_batch=15, window=20
        )
        inserted = sum(len(inserts) for inserts, _ in feed)
        deleted = sum(len(deletes) for _, deletes in feed)
        assert all(deletes for _, deletes in feed[1:])  # churn every slide
        assert deleted >= inserted // 2

    def test_sliding_chain_stream_keeps_a_fixed_window(self):
        from repro.workloads.streams import sliding_chain_stream

        window, batches, per_batch = 30, 5, 4
        initial, feed = sliding_chain_stream(
            window=window, batches=batches, edges_per_batch=per_batch
        )
        assert len(initial) == window
        live = set(initial)
        for inserts, deletes in feed:
            assert len(inserts) == len(deletes) == per_batch
            assert set(deletes) <= live  # evicts only delivered, live edges
            live.difference_update(deletes)
            assert live.isdisjoint(inserts)  # tip edges are genuinely new
            live.update(inserts)
            assert len(live) == window  # the window never grows or shrinks
        # The survivors are exactly one contiguous chain segment.
        subjects = sorted(int(t.subject.value[1:]) for t in live)
        assert subjects == list(
            range(batches * per_batch, batches * per_batch + window)
        )
