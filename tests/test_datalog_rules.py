"""Unit tests for rules and constraints (syntax conditions of Section 3.2)."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.rules import Constraint, Rule, RuleError
from repro.datalog.terms import Constant, Null, Variable

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
a, b = Constant("a"), Constant("b")


def simple_rule():
    return Rule((Atom("p", (X, Y)),), (Atom("q", (X,)),))


class TestRuleValidation:
    def test_requires_positive_body(self):
        with pytest.raises(RuleError):
            Rule((), (Atom("q", (a,)),))

    def test_requires_head(self):
        with pytest.raises(RuleError):
            Rule((Atom("p", (X,)),), ())

    def test_negative_variables_must_be_positive_bound(self):
        with pytest.raises(RuleError):
            Rule((Atom("p", (X,)),), (Atom("q", (X,)),), body_negative=(Atom("r", (Y,)),))

    def test_existential_disjoint_from_body(self):
        with pytest.raises(RuleError):
            Rule((Atom("p", (X,)),), (Atom("q", (X,)),), existential_variables=(X,))

    def test_head_variables_must_be_frontier_or_existential(self):
        with pytest.raises(RuleError):
            Rule((Atom("p", (X,)),), (Atom("q", (Y,)),))

    def test_no_nulls_in_rules(self):
        with pytest.raises(RuleError):
            Rule((Atom("p", (Null("_:z"),)),), (Atom("q", (a,)),))
        with pytest.raises(RuleError):
            Rule((Atom("p", (X,)),), (Atom("q", (Null("_:z"),)),))

    def test_valid_existential_rule(self):
        rule = Rule((Atom("p", (X,)),), (Atom("s", (X, Y)),), existential_variables=(Y,))
        assert rule.has_existentials and rule.frontier == {X}


class TestRuleInspection:
    def test_body_and_variables(self):
        rule = Rule(
            (Atom("p", (X, Y)),),
            (Atom("q", (X,)),),
            body_negative=(Atom("r", (Y,)),),
        )
        assert set(rule.body) == {Atom("p", (X, Y)), Atom("r", (Y,))}
        assert rule.positive_body_variables == {X, Y}
        assert rule.negative_body_variables == {Y}
        assert rule.head_variables == {X}
        assert rule.frontier == {X}

    def test_predicates(self):
        rule = simple_rule()
        assert rule.head_predicates == {"q"}
        assert rule.body_predicates == {"p"}
        assert rule.predicates == {"p", "q"}

    def test_is_plain_datalog(self):
        assert simple_rule().is_plain_datalog
        exist = Rule((Atom("p", (X,)),), (Atom("s", (X, Y)),), existential_variables=(Y,))
        assert not exist.is_plain_datalog

    def test_constants(self):
        rule = Rule((Atom("p", (X, a)),), (Atom("q", (X, b)),))
        assert rule.constants == {a, b}

    def test_str_roundtrips_through_parser(self):
        from repro.datalog.parser import parse_rule

        rule = Rule(
            (Atom("p", (X, Y)),),
            (Atom("s", (X, Z)),),
            body_negative=(Atom("r", (Y,)),),
            existential_variables=(Z,),
        )
        assert parse_rule(str(rule) + ".") == rule


class TestRuleTransformations:
    def test_positive_part_drops_negation(self):
        rule = Rule((Atom("p", (X,)),), (Atom("q", (X,)),), body_negative=(Atom("r", (X,)),))
        assert rule.positive_part().body_negative == ()

    def test_split_head_without_existentials(self):
        rule = Rule((Atom("p", (X,)),), (Atom("q", (X,)), Atom("r", (X,))))
        split = rule.split_head()
        assert len(split) == 2
        assert {s.head[0].predicate for s in split} == {"q", "r"}

    def test_split_head_with_existentials_shares_nulls(self):
        rule = Rule(
            (Atom("p", (X,)),),
            (Atom("q", (X, Y)), Atom("r", (Y,))),
            existential_variables=(Y,),
        )
        split = rule.split_head()
        # one generator rule plus one rule per original head atom
        assert len(split) == 3
        generator = split[0]
        assert generator.existential_variables == {Y}

    def test_apply_substitution(self):
        rule = simple_rule()
        applied = rule.apply({X: a})
        assert applied.body_positive[0] == Atom("p", (a, Y))
        assert applied.head[0] == Atom("q", (a,))

    def test_apply_cannot_touch_existentials(self):
        rule = Rule((Atom("p", (X,)),), (Atom("s", (X, Y)),), existential_variables=(Y,))
        with pytest.raises(RuleError):
            rule.apply({Y: a})

    def test_rename_apart(self):
        rule = simple_rule()
        renamed = rule.rename_apart("_1")
        assert renamed.body_positive[0].variables == {Variable("X_1"), Variable("Y_1")}


class TestConstraint:
    def test_requires_body(self):
        with pytest.raises(RuleError):
            Constraint(())

    def test_variables(self):
        constraint = Constraint((Atom("p", (X, Y)),))
        assert constraint.variables == {X, Y}

    def test_str(self):
        assert str(Constraint((Atom("p", (X,)),))) == "p(?X) -> false"

    def test_to_rule_star_rewriting(self):
        constraint = Constraint((Atom("p", (X,)),))
        star = Constant("__star__")
        rule = constraint.to_rule("answer", 2, star)
        assert rule.head[0] == Atom("answer", (star, star))
        assert rule.body_positive == constraint.body
