"""Unit tests for stratification (Section 3.2)."""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.stratification import (
    DependencyGraph,
    StratificationError,
    is_stratified,
    partition_by_stratum,
    stratify,
)


class TestDependencyGraph:
    def test_edges_and_polarity(self):
        program = parse_program(
            """
            e(?X, ?Y) -> r(?X, ?Y).
            r(?X, ?Y), not blocked(?X) -> ok(?X).
            """
        )
        graph = DependencyGraph(program)
        assert ("e", "r") not in graph.negative_edges()
        assert ("blocked", "ok") in graph.negative_edges()
        assert ("r", False) in graph.successors("e")

    def test_sccs_group_mutual_recursion(self):
        program = parse_program(
            """
            p(?X) -> q(?X).
            q(?X) -> p(?X).
            base(?X) -> p(?X).
            """
        )
        components = DependencyGraph(program).strongly_connected_components()
        assert frozenset({"p", "q"}) in components


class TestStratify:
    def test_negation_free_program_single_stratum(self):
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), e(?Y, ?Z) -> t(?X, ?Z).")
        strata = stratify(program)
        assert set(strata.values()) == {0}

    def test_negation_pushes_to_higher_stratum(self):
        program = parse_program(
            """
            e(?X, ?Y) -> r(?X, ?Y).
            node(?X), not r(?X, ?X) -> irreflexive(?X).
            """
        )
        strata = stratify(program)
        assert strata["irreflexive"] > strata["r"]

    def test_chained_negation_increases_strata(self):
        program = parse_program(
            """
            a(?X), not b(?X) -> c(?X).
            d(?X), not c(?X) -> e(?X).
            """
        )
        strata = stratify(program)
        assert strata["e"] > strata["c"] >= strata["b"]

    def test_negation_through_recursion_rejected(self):
        program = parse_program(
            """
            p(?X), not q(?X) -> q(?X).
            """
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_mutual_recursion_with_negation_rejected(self):
        program = parse_program(
            """
            a(?X), not q(?X) -> p(?X).
            p(?X) -> q(?X).
            """
        )
        with pytest.raises(StratificationError):
            stratify(program)
        assert not is_stratified(program)

    def test_is_stratified_positive(self):
        program = parse_program("p(?X) -> q(?X).")
        assert is_stratified(program)

    def test_clique_program_is_stratified(self):
        from repro.reductions.clique import clique_program

        strata = stratify(clique_program().ex())
        assert strata["yes"] > strata["noclique"]
        assert strata["zero0"] > strata["not_min"]


class TestPartition:
    def test_rules_grouped_by_head_stratum(self):
        program = parse_program(
            """
            e(?X, ?Y) -> r(?X, ?Y).
            node(?X), not r(?X, ?X) -> irr(?X).
            """
        )
        strata = stratify(program)
        partition = partition_by_stratum(program, strata)
        assert len(partition) == max(strata.values()) + 1
        assert any(rule.head[0].predicate == "r" for rule in partition[0])
        assert any(rule.head[0].predicate == "irr" for rule in partition[-1])

    def test_empty_program(self):
        program = parse_program("")
        assert partition_by_stratum(program, {}) == [[]]
