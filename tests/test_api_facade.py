"""The programmatic facade: Engine/EngineConfig vs the legacy env vars.

The parity classes run the same workload twice in fresh subprocesses — once
configured through ``REPRO_ENGINE_*`` environment variables, once through
:class:`repro.EngineConfig` — and require byte-identical engine counters:
the facade must be a pure re-skinning of the legacy configuration, not a
second code path.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.api import Engine, EngineConfig

WORKLOAD = """
import json, sys
import repro
from repro.engine.stats import STATS

{configure}

program = '''
    edge(?X, ?Y) -> path(?X, ?Y).
    edge(?X, ?Z), path(?Z, ?Y) -> path(?X, ?Y).
    path(?X, ?Y), path(?Y, ?X) -> scc(?X, ?Y).
'''
facts = [repro.parse_atom(f"edge(n{{i}}, n{{(i + 1) % 30}})") for i in range(30)]
engine = repro.Engine()
STATS.reset()
answers = engine.evaluate(program, "path", repro.Database(facts))
print(json.dumps({{"answers": len(answers), "mode": engine.mode,
                   "counters": STATS.snapshot()}}, sort_keys=True))
"""


def run_workload(configure_lines, env_overrides):
    env = {
        key: value
        for key, value in os.environ.items()
        if not key.startswith("REPRO_")
    }
    env.update(env_overrides)
    env["PYTHONPATH"] = "src"
    result = subprocess.run(
        [sys.executable, "-c", WORKLOAD.format(configure=configure_lines)],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip().splitlines()[-1]


class TestEnvVarParity:
    """EngineConfig and legacy env vars must produce byte-identical runs."""

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_modes_round_trip(self, mode):
        via_env = run_workload("", {"REPRO_ENGINE_MODE": mode})
        via_config = run_workload(
            f"repro.Engine(repro.EngineConfig(mode={mode!r}))", {}
        )
        assert via_env == via_config
        assert json.loads(via_env)["mode"] == mode

    def test_parallel_env_round_trip(self):
        # Keep the threshold above the workload size so the counters cover
        # the mode-selection plumbing without paying a pool spawn per test.
        via_env = run_workload(
            "",
            {"REPRO_ENGINE_PARALLEL": "2", "REPRO_PARALLEL_THRESHOLD": "100000"},
        )
        via_config = run_workload(
            "repro.Engine(repro.EngineConfig(mode='parallel', workers=2,"
            " parallel_threshold=100000))",
            {},
        )
        assert via_env == via_config
        assert json.loads(via_env)["mode"] == "parallel"

    def test_config_wins_over_env(self):
        output = run_workload(
            "repro.Engine(repro.EngineConfig(mode='row'))",
            {"REPRO_ENGINE_MODE": "batch"},
        )
        assert json.loads(output)["mode"] == "row"

    def test_from_env_pins_the_environment_snapshot(self):
        config = EngineConfig.from_env(
            {"REPRO_ENGINE_PARALLEL": "3", "REPRO_PARALLEL_THRESHOLD": "17"}
        )
        assert config == EngineConfig(
            mode="parallel", workers=3, parallel_threshold=17
        )
        assert EngineConfig.from_env({}) == EngineConfig()

    def test_from_env_reads_maintenance_knobs(self):
        config = EngineConfig.from_env(
            {"REPRO_SHM_RESULT_MIN": "4096", "REPRO_COMPACT_RATIO": "0.25"}
        )
        assert config == EngineConfig(shm_result_min=4096, compact_ratio=0.25)


class TestEngineConstruction:
    def test_kwargs_build_a_config(self):
        engine = Engine(mode="batch", workers=2)
        assert engine.config == EngineConfig(mode="batch", workers=2)

    def test_config_and_kwargs_conflict(self):
        with pytest.raises(TypeError):
            Engine(EngineConfig(), mode="batch")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(mode="vectorised")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=0)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(parallel_threshold=-1)

    def test_invalid_shm_result_min_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(shm_result_min=-1)

    def test_invalid_compact_ratio_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(compact_ratio=0.0)

    def test_with_overrides(self):
        base = EngineConfig(mode="batch")
        assert base.with_overrides(workers=4) == EngineConfig(mode="batch", workers=4)

    def test_configure_one_liner(self):
        engine = repro.configure(mode="batch")
        assert engine.mode == "batch"


class TestFacadeMethods:
    PROGRAM = "edge(?X, ?Y) -> reach(?X, ?Y). edge(?X, ?Z), reach(?Z, ?Y) -> reach(?X, ?Y)."

    def facts(self):
        return [repro.parse_atom("edge(a, b)"), repro.parse_atom("edge(b, c)")]

    def test_evaluate_matches_module_level(self):
        engine = Engine(mode="batch")
        db = repro.Database(self.facts())
        assert engine.evaluate(self.PROGRAM, "reach", db) == repro.evaluate(
            self.PROGRAM, "reach", db
        )

    def test_chase_materialises(self):
        instance = Engine().chase(self.PROGRAM, self.facts())
        assert len(list(instance.with_predicate("reach"))) == 3

    def test_delta_session(self):
        with Engine().delta_session(self.PROGRAM, self.facts()) as session:
            assert len(session.query("reach")) == 3
            session.push([repro.parse_atom("edge(c, d)")])
            assert len(session.query("reach")) == 6

    def test_plan_cache_round_trip(self, tmp_path):
        path = str(tmp_path / "plans.json")
        engine = Engine(EngineConfig(plan_cache=path))
        engine.evaluate(self.PROGRAM, "reach", repro.Database(self.facts()))
        assert engine.save_plan_cache() > 0
        # A fresh engine naming the same path stages the plans without error.
        Engine(EngineConfig(plan_cache=path))

    def test_save_plan_cache_requires_a_path(self):
        with pytest.raises(ValueError):
            Engine().save_plan_cache()

    def test_serve_returns_unstarted_service(self):
        service = Engine().serve(block=False)
        assert service.port == 8377
        assert service.view.consistent
        service.view.close()


class TestDeprecatedShims:
    def test_legacy_setters_reachable_from_top_level(self):
        assert repro.set_execution_mode is not None
        assert repro.set_worker_count is not None
        from repro.engine import mode

        assert repro.set_execution_mode is mode.set_execution_mode

    def test_service_exports_lazy(self):
        assert repro.MaterializedView.__name__ == "MaterializedView"
        assert repro.QueryService.__name__ == "QueryService"

    def test_dir_lists_lazy_exports(self):
        listing = dir(repro)
        for name in ("MaterializedView", "QueryService", "set_execution_mode"):
            assert name in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist
