"""Tests for the DL-Lite_R entailment oracle."""

from repro.datalog.terms import Constant
from repro.owl.dllite import DLLiteReasoner
from repro.owl.model import NamedClass, NamedProperty, Ontology, inverse, some
from repro.rdf.graph import Triple
from repro.rdf.namespaces import RDF, RDFS


def animal_ontology() -> Ontology:
    ontology = Ontology()
    ontology.assert_class("animal", "dog")
    ontology.sub_class("animal", some("eats"))
    ontology.sub_class(some(inverse("eats")), "plant_material")
    return ontology


class TestTBoxReasoning:
    def test_class_hierarchy_closure(self):
        ontology = Ontology()
        ontology.sub_class("A", "B").sub_class("B", "C")
        reasoner = DLLiteReasoner(ontology)
        assert reasoner.is_subclass(NamedClass("A"), NamedClass("C"))
        assert reasoner.is_subclass(NamedClass("A"), NamedClass("A"))
        assert not reasoner.is_subclass(NamedClass("C"), NamedClass("A"))

    def test_property_hierarchy_induces_existential_subsumption(self):
        ontology = Ontology()
        ontology.sub_property("headOf", "worksFor")
        reasoner = DLLiteReasoner(ontology)
        assert reasoner.is_subproperty(NamedProperty("headOf"), NamedProperty("worksFor"))
        assert reasoner.is_subproperty(inverse("headOf"), inverse("worksFor"))
        assert reasoner.is_subclass(some("headOf"), some("worksFor"))
        assert reasoner.is_subclass(some(inverse("headOf")), some(inverse("worksFor")))


class TestABoxReasoning:
    def test_membership_from_class_hierarchy(self):
        ontology = Ontology()
        ontology.sub_class("Student", "Person").assert_class("Student", "alice")
        reasoner = DLLiteReasoner(ontology)
        assert reasoner.is_member(Constant("alice"), NamedClass("Person"))
        assert reasoner.instances_of(NamedClass("Person")) == {Constant("alice")}

    def test_membership_from_role_assertion(self):
        ontology = Ontology()
        ontology.assert_property("eats", "dog", "bone")
        reasoner = DLLiteReasoner(ontology)
        assert reasoner.is_member(Constant("dog"), some("eats"))
        assert reasoner.is_member(Constant("bone"), some(inverse("eats")))

    def test_role_pairs_closed_under_subproperties_and_inverses(self):
        ontology = Ontology()
        ontology.sub_property("headOf", "worksFor")
        ontology.assert_property("headOf", "ann", "dept")
        reasoner = DLLiteReasoner(ontology)
        assert (Constant("ann"), Constant("dept")) in reasoner.role_pairs(NamedProperty("worksFor"))
        assert (Constant("dept"), Constant("ann")) in reasoner.role_pairs(inverse("worksFor"))

    def test_existential_axioms_do_not_create_named_role_pairs(self):
        reasoner = DLLiteReasoner(animal_ontology())
        assert reasoner.role_pairs(NamedProperty("eats")) == frozenset()
        assert reasoner.is_member(Constant("dog"), some("eats"))


class TestConsistency:
    def test_consistent_ontology(self):
        assert DLLiteReasoner(animal_ontology()).is_consistent()

    def test_disjoint_classes_violation(self):
        ontology = Ontology()
        ontology.disjoint_classes("Cat", "Dog")
        ontology.assert_class("Cat", "felix").assert_class("Dog", "felix")
        reasoner = DLLiteReasoner(ontology)
        assert not reasoner.is_consistent()
        assert reasoner.inconsistency_witnesses()

    def test_disjointness_closed_under_hierarchy(self):
        ontology = Ontology()
        ontology.disjoint_classes("Animal", "Plant")
        ontology.sub_class("Dog", "Animal").sub_class("Tree", "Plant")
        ontology.assert_class("Dog", "x").assert_class("Tree", "x")
        # The memberships of x include Animal and Plant, which are disjoint.
        assert not DLLiteReasoner(ontology).is_consistent()

    def test_disjoint_properties_violation(self):
        ontology = Ontology()
        ontology.disjoint_properties("likes", "hates")
        ontology.assert_property("likes", "a", "b").assert_property("hates", "a", "b")
        assert not DLLiteReasoner(ontology).is_consistent()


class TestTripleEntailment:
    def test_entails_instance_triples(self):
        reasoner = DLLiteReasoner(animal_ontology())
        assert reasoner.entails_triple(Triple("dog", RDF.type, "animal"))
        assert reasoner.entails_triple(Triple("dog", RDF.type, "some_eats"))
        assert not reasoner.entails_triple(Triple("dog", RDF.type, "plant_material"))

    def test_entails_tbox_triples(self):
        reasoner = DLLiteReasoner(animal_ontology())
        assert reasoner.entails_triple(Triple("animal", RDFS.subClassOf, "some_eats"))
        assert reasoner.entails_triple(Triple("some_eats-", RDFS.subClassOf, "plant_material"))

    def test_entails_role_triples(self):
        ontology = Ontology()
        ontology.sub_property("headOf", "worksFor")
        ontology.assert_property("headOf", "ann", "dept")
        reasoner = DLLiteReasoner(ontology)
        assert reasoner.entails_triple(Triple("ann", "worksFor", "dept"))
        assert reasoner.entails_triple(Triple("dept", "worksFor-", "ann"))
        assert not reasoner.entails_triple(Triple("dept", "worksFor", "ann"))

    def test_inconsistent_ontology_entails_everything(self):
        ontology = Ontology()
        ontology.disjoint_classes("A", "B")
        ontology.assert_class("A", "x").assert_class("B", "x")
        reasoner = DLLiteReasoner(ontology)
        assert reasoner.entails_triple(Triple("anything", "whatever", "really"))
