"""Tests for the SPARQL -> Datalog translation P_dat (Section 5.1, Theorem 5.2)."""

import pytest

from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.rdf.graph import RDFGraph
from repro.sparql.evaluator import evaluate_pattern
from repro.sparql.parser import parse_sparql
from repro.translation.answers import decode_answers
from repro.translation.sparql_to_datalog import (
    STAR,
    SPARQLToDatalogTranslator,
    translate_pattern,
    translate_select_query,
)


def example_graph() -> RDFGraph:
    return RDFGraph(
        [
            ("a", "name", "Alice"),
            ("a", "phone", "123"),
            ("b", "name", "Bob"),
            ("b", "phone_company", "Acme"),
            ("123", "phone_company", "TelCo"),
            ("a", "knows", "b"),
        ]
    )


def datalog_mappings(translation, graph):
    evaluator = SemiNaiveEvaluator(translation.program)
    instance = evaluator.evaluate(graph.to_database())
    tuples = {
        tuple(atom.terms)
        for atom in instance.with_predicate(translation.answer_predicate)
        if atom.is_ground
    }
    return decode_answers(tuples, translation.answer_variables)


THEOREM_52_QUERIES = [
    "SELECT ?X ?Y WHERE { ?X name ?Y }",
    "SELECT ?X WHERE { ?X name _:B }",
    "SELECT ?X ?Y WHERE { ?X knows ?Y . ?Y name ?Z }",
    "SELECT ?X ?Y ?Z WHERE { ?X name ?Y OPTIONAL { ?X phone ?Z } }",
    "SELECT ?X ?Y ?Z ?W WHERE { { ?X name ?Y OPTIONAL { ?X phone ?Z } } { ?Z phone_company ?W } }",
    'SELECT ?X ?Y WHERE { ?X name ?Y FILTER (?Y = "Alice") }',
    'SELECT ?X ?Y WHERE { ?X name ?Y FILTER (!(?Y = "Alice")) }',
    "SELECT ?X ?Y ?Z WHERE { ?X name ?Y OPTIONAL { ?X phone ?Z } FILTER (bound(?Z)) }",
    "SELECT ?X ?Y ?Z WHERE { ?X name ?Y OPTIONAL { ?X phone ?Z } FILTER (!bound(?Z)) }",
    'SELECT ?X WHERE { { ?X name "Alice" } UNION { ?X phone_company ?W } }',
    "SELECT ?X ?W WHERE { { ?X name _:B } UNION { ?X knows ?W OPTIONAL { ?W phone ?P } } }",
    "SELECT ?X WHERE { ?X name ?Y FILTER (bound(?Y) && !(?Y = ?X)) }",
]


class TestTheorem52:
    @pytest.mark.parametrize("query_text", THEOREM_52_QUERIES)
    def test_translation_agrees_with_sparql_semantics(self, query_text):
        """⟦P⟧_G = ⟦(P_dat, tau_db(G))⟧ on the Example 5.1 style suite."""
        graph = example_graph()
        query = parse_sparql(query_text)
        sparql_answers = evaluate_pattern(query.algebra(), graph)
        translation = translate_select_query(query)
        assert datalog_mappings(translation, graph) == sparql_answers

    def test_translation_on_empty_graph(self):
        graph = RDFGraph()
        query = parse_sparql("SELECT ?X WHERE { ?X name ?Y }")
        translation = translate_select_query(query)
        assert datalog_mappings(translation, graph) == set()


class TestTranslationStructure:
    def test_program_is_plain_datalog_with_stratified_negation(self):
        query = parse_sparql("SELECT ?X ?Z WHERE { ?X name ?Y OPTIONAL { ?X phone ?Z } }")
        translation = translate_select_query(query)
        assert not translation.program.has_existentials
        from repro.datalog.stratification import is_stratified

        assert is_stratified(translation.program)

    def test_translation_is_triq_lite(self):
        """P_dat is in particular a warded program with grounded negation."""
        from repro.analysis.guards import classify_program

        query = parse_sparql("SELECT ?X ?Z WHERE { ?X name ?Y OPTIONAL { ?X phone ?Z } }")
        translation = translate_select_query(query)
        assert classify_program(translation.program).is_triq_lite

    def test_star_padding_for_unbound_positions(self):
        graph = example_graph()
        query = parse_sparql("SELECT ?X ?Z WHERE { ?X name ?Y OPTIONAL { ?X phone ?Z } }")
        translation = translate_select_query(query)
        evaluator = SemiNaiveEvaluator(translation.program)
        instance = evaluator.evaluate(graph.to_database())
        tuples = {
            tuple(atom.terms)
            for atom in instance.with_predicate(translation.answer_predicate)
        }
        assert any(STAR in t for t in tuples)

    def test_answer_variable_order_follows_projection(self):
        query = parse_sparql("SELECT ?Z ?X WHERE { ?X name ?Z }")
        translation = translate_select_query(query)
        assert [v.name for v in translation.answer_variables] == ["Z", "X"]

    def test_blank_nodes_become_non_projected_variables(self):
        query = parse_sparql("SELECT ?X WHERE { ?X eats _:B }")
        translation = translate_select_query(query)
        assert len(translation.answer_variables) == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SPARQLToDatalogTranslator("bogus")

    def test_pattern_translation_without_select(self):
        from repro.sparql.ast import BGP

        pattern = BGP.of(("?X", "name", "?Y"))
        translation = translate_pattern(pattern)
        assert {v.name for v in translation.answer_variables} == {"X", "Y"}
