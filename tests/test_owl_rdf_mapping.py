"""Tests for Table 1: storing OWL 2 QL core ontologies as RDF graphs."""

from repro.datalog.terms import Constant
from repro.owl.model import (
    ClassAssertion,
    DisjointClasses,
    DisjointObjectProperties,
    NamedClass,
    NamedProperty,
    ObjectPropertyAssertion,
    Ontology,
    SubClassOf,
    SubObjectPropertyOf,
    inverse,
    some,
)
from repro.owl.rdf_mapping import (
    axiom_to_triple,
    class_uri,
    graph_to_ontology,
    ontology_to_graph,
    parse_class_uri,
    parse_property_uri,
    property_uri,
)
from repro.rdf.graph import Triple
from repro.rdf.namespaces import OWL, RDF, RDFS


class TestURIConventions:
    def test_property_uri_roundtrip(self):
        for prop in (NamedProperty("eats"), inverse("eats")):
            assert parse_property_uri(property_uri(prop)) == prop

    def test_class_uri_roundtrip(self):
        for cls in (NamedClass("Animal"), some("eats"), some(inverse("eats"))):
            assert parse_class_uri(class_uri(cls)) == cls

    def test_uri_forms(self):
        assert property_uri(inverse("eats")) == Constant("eats-")
        assert class_uri(some("eats")) == Constant("some_eats")
        assert class_uri(some(inverse("eats"))) == Constant("some_eats-")


class TestTable1:
    def test_each_axiom_form(self):
        """The exact triple of Table 1 for each of the six axiom forms."""
        assert axiom_to_triple(SubClassOf(NamedClass("b1"), NamedClass("b2"))) == Triple(
            "b1", RDFS.subClassOf, "b2"
        )
        assert axiom_to_triple(
            SubObjectPropertyOf(NamedProperty("r1"), NamedProperty("r2"))
        ) == Triple("r1", RDFS.subPropertyOf, "r2")
        assert axiom_to_triple(DisjointClasses(NamedClass("b1"), NamedClass("b2"))) == Triple(
            "b1", OWL.disjointWith, "b2"
        )
        assert axiom_to_triple(
            DisjointObjectProperties(NamedProperty("r1"), NamedProperty("r2"))
        ) == Triple("r1", OWL.propertyDisjointWith, "r2")
        assert axiom_to_triple(ClassAssertion(NamedClass("b"), Constant("a"))) == Triple(
            "a", RDF.type, "b"
        )
        assert axiom_to_triple(
            ObjectPropertyAssertion(NamedProperty("p"), Constant("a1"), Constant("a2"))
        ) == Triple("a1", "p", "a2")

    def test_basic_class_and_property_arguments(self):
        triple = axiom_to_triple(SubClassOf(some(inverse("p")), NamedClass("a1")))
        assert triple == Triple("some_p-", RDFS.subClassOf, "a1")


class TestDeclarations:
    def test_property_declarations_present(self):
        ontology = Ontology()
        ontology.sub_class("Animal", some("eats"))
        graph = ontology_to_graph(ontology)
        assert ("eats", RDF.type, OWL.ObjectProperty) in graph
        assert ("eats-", RDF.type, OWL.ObjectProperty) in graph
        assert ("eats", OWL.inverseOf, "eats-") in graph
        assert ("some_eats", RDF.type, OWL.Restriction) in graph
        assert ("some_eats", OWL.onProperty, "eats") in graph
        assert ("some_eats", OWL.someValuesFrom, OWL.Thing) in graph
        assert ("some_eats", RDF.type, OWL.Class) in graph
        assert ("some_eats-", OWL.onProperty, "eats-") in graph

    def test_class_declarations_present(self):
        ontology = Ontology()
        ontology.sub_class("Animal", "LivingThing")
        graph = ontology_to_graph(ontology)
        assert ("Animal", RDF.type, OWL.Class) in graph
        assert ("LivingThing", RDF.type, OWL.Class) in graph

    def test_declarations_optional(self):
        ontology = Ontology()
        ontology.sub_class("A", "B")
        assert len(ontology_to_graph(ontology, include_declarations=False)) == 1


class TestRoundtrip:
    def test_graph_to_ontology_recovers_axioms(self):
        ontology = Ontology()
        ontology.sub_class("Student", "Person")
        ontology.sub_class("Person", some("hasName"))
        ontology.sub_property("headOf", "worksFor")
        ontology.disjoint_classes("Student", "Course")
        ontology.disjoint_properties("headOf", "takesCourse")
        ontology.assert_class("Student", "alice")
        ontology.assert_property("worksFor", "alice", "uni")

        recovered = graph_to_ontology(ontology_to_graph(ontology))
        assert sorted(map(str, recovered.axioms)) == sorted(map(str, ontology.axioms))

    def test_roundtrip_on_university_workload(self):
        from repro.workloads.ontologies import university_ontology

        ontology = university_ontology(n_departments=1, students_per_department=4)
        recovered = graph_to_ontology(ontology_to_graph(ontology))
        assert sorted(map(str, recovered.axioms)) == sorted(map(str, ontology.axioms))

    def test_inverse_property_assertion_reoriented(self):
        """An assertion stored over p- is read back as an assertion over p."""
        graph = ontology_to_graph(Ontology().sub_property("p", "q"))
        graph.add(("a", "p-", "b"))
        recovered = graph_to_ontology(graph)
        assert any(
            isinstance(axiom, ObjectPropertyAssertion)
            and axiom.property == NamedProperty("p")
            and axiom.subject == Constant("b")
            and axiom.object == Constant("a")
            for axiom in recovered.axioms
        )
