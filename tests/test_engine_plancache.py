"""Persisted compiled-plan bundles: save → fresh-stage → rebuild parity.

The plan cache must be **process-independent**: a bundle written by one
process (with its own term-interning history and hash seed) must rebuild in
another into plans that match exactly — same join order, same slot layout,
same results in every execution mode — or be ignored wholesale when stale.
"""

import random
import subprocess
import sys

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.terms import Constant
from repro.engine import plan as plan_module
from repro.engine import plancache
from repro.engine.mode import execution_mode

PROGRAM_TEXT = """
triple(?X, knows, ?Y) -> knows(?X, ?Y).
knows(?X, ?Y) -> connected(?X, ?Y).
connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
person(?X) -> exists ?Z . parent(?X, ?Z), person(?Z).
"""


@pytest.fixture(autouse=True)
def clean_staging():
    plancache.clear_staging()
    yield
    plancache.clear_staging()


def _database(seed=3, n=40):
    rng = random.Random(seed)
    knows = Constant("knows")
    return [
        Atom("triple", (Constant(f"v{rng.randint(0, 10)}"), knows, Constant(f"v{rng.randint(0, 10)}")))
        for _ in range(n)
    ] + [Atom("person", (Constant("p0"),))]


def test_save_load_round_trip_in_process(tmp_path):
    program = parse_program(PROGRAM_TEXT)
    path = str(tmp_path / "plans.pkl")
    saved = plancache.save_plan_cache(path, program.rules)
    assert saved == len(program.rules)

    # Rebuild every rule from staging and compare the structural layout of
    # the freshly compiled plans.
    compiled = [plan_module.compile_rule(rule) for rule in program.rules]
    assert plancache.load_plan_cache(path) == saved
    for rule, crule in zip(program.rules, compiled):
        rebuilt = plancache._staged_lookup(rule)
        assert rebuilt is not None
        for fresh_plan, staged_plan in zip(
            (crule.plan, *crule.pivot_plans), (rebuilt.plan, *rebuilt.pivot_plans)
        ):
            assert [s.atom for s in staged_plan.steps] == [s.atom for s in fresh_plan.steps]
            assert [s.ops for s in staged_plan.steps] == [s.ops for s in fresh_plan.steps]
            assert [s.probes for s in staged_plan.steps] == [s.probes for s in fresh_plan.steps]
            assert staged_plan.slot_of == fresh_plan.slot_of
            assert staged_plan.prebound == fresh_plan.prebound
        assert (rebuilt.head_plan is None) == (crule.head_plan is None)
    assert plancache.cache_hits() >= len(program.rules)


def test_rebuilt_plans_evaluate_identically(tmp_path):
    program = parse_program(PROGRAM_TEXT)
    database = _database()
    path = str(tmp_path / "plans.pkl")
    plancache.save_plan_cache(path, program.rules)

    with execution_mode("batch"):
        expected = list(SemiNaiveEvaluator(parse_program("""
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
        """)).evaluate(database))

    # Evict the in-process cache, stage the file, and re-evaluate: every
    # compile_rule call must be served by a rebuild.
    plan_module._RULE_CACHE.clear()
    plan_module._BODY_CACHE.clear()
    plan_module._PIVOT_CACHE.clear()
    assert plancache.load_plan_cache(path) > 0
    before = plancache.cache_hits()
    with execution_mode("batch"):
        got = list(SemiNaiveEvaluator(parse_program("""
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
        """)).evaluate(database))
    assert got == expected
    assert plancache.cache_hits() > before


def test_cross_process_rebuild_matches(tmp_path):
    """A bundle written by a *different* process (different interning history,
    randomised hash seed) rebuilds into plans that produce identical results."""
    path = str(tmp_path / "plans.pkl")
    writer = (
        "import sys\n"
        "from repro.datalog.parser import parse_program\n"
        "from repro.datalog.atoms import Atom\n"
        "from repro.datalog.terms import Constant\n"
        "from repro.engine import plancache\n"
        # Perturb the interning history so persisted IDs could never be
        # accidentally valid here.
        "from repro.engine.interning import TERMS\n"
        "[TERMS.intern_constant(f'pad{i}') for i in range(137)]\n"
        f"program = parse_program({PROGRAM_TEXT!r})\n"
        f"n = plancache.save_plan_cache({path!r}, program.rules)\n"
        "print(n)\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", writer],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
        cwd=__file__.rsplit("/tests/", 1)[0],
    )
    assert int(result.stdout.strip()) > 0

    program = parse_program(PROGRAM_TEXT)
    database = _database(seed=8)
    with execution_mode("batch"):
        expected = list(SemiNaiveEvaluator(parse_program("""
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
        """)).evaluate(database))
    plan_module._RULE_CACHE.clear()
    assert plancache.load_plan_cache(path) == len(program.rules)
    before = plancache.cache_hits()
    with execution_mode("batch"):
        got = list(SemiNaiveEvaluator(parse_program("""
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
        """)).evaluate(database))
    assert got == expected
    assert plancache.cache_hits() > before


def test_stale_and_corrupt_files_are_ignored(tmp_path):
    bad = tmp_path / "bad.pkl"
    bad.write_bytes(b"not a pickle")
    assert plancache.load_plan_cache(str(bad)) == 0
    missing = tmp_path / "missing.pkl"
    assert plancache.load_plan_cache(str(missing)) == 0

    # A digest hit whose signature mismatches (stale entry) recompiles.
    program = parse_program("p(?X) -> q(?X).")
    path = str(tmp_path / "plans.pkl")
    plancache.save_plan_cache(path, program.rules)
    assert plancache.load_plan_cache(path) == 1
    other = parse_program("p(?X) -> r(?X).").rules[0]
    assert plancache._staged_lookup(other) is None


def test_unknown_rules_fall_through_to_compilation(tmp_path):
    program = parse_program("p(?X) -> q(?X).")
    path = str(tmp_path / "plans.pkl")
    plancache.save_plan_cache(path, program.rules)
    plan_module._RULE_CACHE.clear()
    assert plancache.load_plan_cache(path) == 1
    fresh = parse_program("a(?X, ?Y), b(?Y) -> c(?X).").rules[0]
    crule = plan_module.compile_rule(fresh)
    assert crule.rule == fresh
    assert len(crule.pivot_plans) == 2
