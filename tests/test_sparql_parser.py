"""Tests for the SPARQL concrete-syntax parser."""

import pytest

from repro.datalog.terms import Variable
from repro.sparql.ast import And, BGP, Filter, Opt, Select, Union
from repro.sparql.parser import SPARQLParseError, parse_sparql

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestParser:
    def test_simple_select(self):
        query = parse_sparql("SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }")
        assert query.projection == (X,)
        assert isinstance(query.pattern, BGP)
        assert len(query.pattern.patterns) == 2

    def test_projection_order_preserved(self):
        query = parse_sparql("SELECT ?Z ?X WHERE { ?X p ?Z }")
        assert query.projection == (Z, X)

    def test_union(self):
        query = parse_sparql(
            """
            SELECT ?X WHERE {
              { ?X name ?Y }
              UNION
              { ?X phone ?Y }
            }
            """
        )
        assert isinstance(query.pattern, Union)

    def test_optional(self):
        query = parse_sparql("SELECT ?X ?Z WHERE { ?X name ?Y OPTIONAL { ?X phone ?Z } }")
        assert isinstance(query.pattern, Opt)

    def test_filter(self):
        query = parse_sparql('SELECT ?X WHERE { ?X name ?Y FILTER (?Y = "Alice") }')
        assert isinstance(query.pattern, Filter)

    def test_filter_connectives(self):
        query = parse_sparql(
            "SELECT ?X WHERE { ?X name ?Y FILTER (bound(?Y) && !(?Y = ?X)) }"
        )
        assert isinstance(query.pattern, Filter)

    def test_nested_groups_joined_with_and(self):
        query = parse_sparql("SELECT ?X WHERE { { ?X p ?Y } { ?Y q ?Z } }")
        assert isinstance(query.pattern, And)

    def test_blank_nodes(self):
        query = parse_sparql("SELECT ?X WHERE { ?X eats _:B }")
        assert isinstance(query.pattern, BGP)
        assert len(query.pattern.blank_nodes()) == 1

    def test_algebra_wraps_in_select(self):
        query = parse_sparql("SELECT ?X WHERE { ?X p ?Y }")
        assert isinstance(query.algebra(), Select)

    def test_keywords_case_insensitive(self):
        query = parse_sparql("select ?X where { ?X p ?Y optional { ?X q ?Z } }")
        assert isinstance(query.pattern, Opt)

    def test_comments(self):
        query = parse_sparql("SELECT ?X WHERE { ?X p ?Y # trailing comment\n }")
        assert isinstance(query.pattern, BGP)


class TestParserErrors:
    def test_missing_where(self):
        with pytest.raises(SPARQLParseError):
            parse_sparql("SELECT ?X { ?X p ?Y }")

    def test_missing_projection(self):
        with pytest.raises(SPARQLParseError):
            parse_sparql("SELECT WHERE { ?X p ?Y }")

    def test_unterminated_group(self):
        with pytest.raises(SPARQLParseError):
            parse_sparql("SELECT ?X WHERE { ?X p ?Y ")

    def test_trailing_tokens(self):
        with pytest.raises(SPARQLParseError):
            parse_sparql("SELECT ?X WHERE { ?X p ?Y } garbage")

    def test_filter_without_variable(self):
        with pytest.raises(SPARQLParseError):
            parse_sparql("SELECT ?X WHERE { ?X p ?Y FILTER (a = b) }")
