"""Unit tests for the term model (constants, nulls, variables)."""

import pytest

from repro.datalog.terms import (
    Constant,
    Null,
    Variable,
    is_constant,
    is_null,
    is_variable,
    term_from_token,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_not_equal_to_other_term_kinds(self):
        assert Constant("a") != Null("a")
        assert Constant("a") != Variable("a")

    def test_str(self):
        assert str(Constant("rdf:type")) == "rdf:type"

    def test_is_ground(self):
        assert Constant("a").is_ground

    def test_requires_string(self):
        with pytest.raises(TypeError):
            Constant(42)

    def test_ordering(self):
        assert Constant("a") < Constant("b")


class TestNull:
    def test_equality_by_label(self):
        assert Null("_:b1") == Null("_:b1")
        assert Null("_:b1") != Null("_:b2")

    def test_fresh_nulls_are_distinct(self):
        assert Null.fresh() != Null.fresh()

    def test_fresh_uses_hint(self):
        assert Null.fresh("w").label.startswith("_:w")

    def test_not_ground(self):
        assert not Null("_:b").is_ground

    def test_requires_string(self):
        with pytest.raises(TypeError):
            Null(1)


class TestVariable:
    def test_question_mark_normalisation(self):
        assert Variable("?X") == Variable("X")

    def test_str_has_question_mark(self):
        assert str(Variable("X")) == "?X"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("?")

    def test_not_ground(self):
        assert not Variable("X").is_ground

    def test_hash_consistent_with_eq(self):
        assert len({Variable("?X"), Variable("X")}) == 1


class TestTermFromToken:
    def test_variable(self):
        assert term_from_token("?X") == Variable("X")

    def test_blank_node(self):
        assert term_from_token("_:b") == Null("_:b")

    def test_quoted_string(self):
        assert term_from_token('"Jeffrey Ullman"') == Constant("Jeffrey Ullman")

    def test_angle_bracket_uri(self):
        assert term_from_token("<http://example.org/x>") == Constant("http://example.org/x")

    def test_bare_identifier(self):
        assert term_from_token("owl:sameAs") == Constant("owl:sameAs")


class TestKindPredicates:
    def test_is_constant(self):
        assert is_constant(Constant("a")) and not is_constant(Null("_:b"))

    def test_is_null(self):
        assert is_null(Null("_:b")) and not is_null(Variable("X"))

    def test_is_variable(self):
        assert is_variable(Variable("X")) and not is_variable(Constant("a"))
