"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datalog.atoms import Atom, unify_with_fact
from repro.datalog.database import Instance
from repro.datalog.terms import Constant, Variable
from repro.sparql.mappings import (
    Mapping,
    compatible,
    join,
    left_outer_join,
    minus,
    union,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

constant_names = st.sampled_from(["a", "b", "c", "d", "e", "f"])
variable_names = st.sampled_from(["X", "Y", "Z", "W"])
predicate_names = st.sampled_from(["p", "q", "r"])

constants = constant_names.map(Constant)
variables = variable_names.map(Variable)


@st.composite
def mappings(draw):
    names = draw(st.sets(variable_names, max_size=4))
    return Mapping({Variable(n): Constant(draw(constant_names)) for n in names})


@st.composite
def ground_atoms(draw):
    predicate = draw(predicate_names)
    arity = draw(st.integers(min_value=0, max_value=3))
    return Atom(predicate, tuple(draw(constants) for _ in range(arity)))


@st.composite
def pattern_atoms(draw):
    predicate = draw(predicate_names)
    arity = draw(st.integers(min_value=1, max_value=3))
    terms = tuple(
        draw(st.one_of(constants, variables)) for _ in range(arity)
    )
    return Atom(predicate, terms)


mapping_sets = st.sets(mappings(), max_size=5)


# ---------------------------------------------------------------------------
# SPARQL algebra invariants (Section 3.1)
# ---------------------------------------------------------------------------


class TestMappingAlgebraProperties:
    @given(mappings(), mappings())
    def test_compatibility_is_symmetric(self, first, second):
        assert compatible(first, second) == compatible(second, first)

    @given(mappings())
    def test_empty_mapping_compatible_with_all(self, mapping):
        assert compatible(Mapping({}), mapping)

    @given(mappings(), mappings())
    def test_join_of_compatible_mappings_extends_both(self, first, second):
        if compatible(first, second):
            merged = first.merge(second)
            assert merged.domain == first.domain | second.domain
            for variable in first.domain:
                assert merged[variable] == first[variable]

    @given(mapping_sets, mapping_sets)
    def test_join_commutative(self, left, right):
        assert join(left, right) == join(right, left)

    @given(mapping_sets, mapping_sets)
    def test_union_commutative_and_idempotent(self, left, right):
        assert union(left, right) == union(right, left)
        assert union(left, left) == left

    @given(mapping_sets, mapping_sets)
    def test_left_outer_join_identity(self, left, right):
        """The paper's definition: Omega1 ⟕ Omega2 = (⋈) ∪ (∖)."""
        assert left_outer_join(left, right) == union(join(left, right), minus(left, right))

    @given(mapping_sets, mapping_sets)
    def test_minus_is_subset_of_left(self, left, right):
        assert minus(left, right) <= left

    @given(mapping_sets)
    def test_join_with_empty_mapping_set_is_empty(self, left):
        assert join(left, set()) == set()

    @given(mapping_sets)
    def test_join_with_unit_is_identity(self, left):
        assert join(left, {Mapping({})}) == left

    @given(mappings(), st.sets(variable_names, max_size=3))
    def test_restriction_shrinks_domain(self, mapping, names):
        restricted = mapping.restrict([Variable(n) for n in names])
        assert restricted.domain <= mapping.domain
        for variable in restricted.domain:
            assert restricted[variable] == mapping[variable]


# ---------------------------------------------------------------------------
# Atom / instance invariants
# ---------------------------------------------------------------------------


class TestAtomProperties:
    @given(pattern_atoms(), ground_atoms())
    def test_unification_soundness(self, pattern, fact):
        substitution = unify_with_fact(pattern, fact)
        if substitution is not None:
            assert pattern.apply(substitution) == fact

    @given(ground_atoms())
    def test_ground_atom_unifies_with_itself(self, atom):
        assert unify_with_fact(atom, atom) == {}

    @given(st.lists(ground_atoms(), max_size=15))
    def test_instance_deduplicates(self, atoms):
        instance = Instance(atoms)
        assert len(instance) == len(set(atoms))
        for atom in atoms:
            assert atom in instance

    @given(st.lists(ground_atoms(), max_size=15), pattern_atoms())
    def test_matching_returns_exactly_the_unifiable_facts(self, atoms, pattern):
        instance = Instance(atoms)
        matched = {
            fact
            for fact in instance.matching(pattern)
            if unify_with_fact(pattern, fact) is not None
        }
        expected = {
            fact
            for fact in set(atoms)
            if fact.predicate == pattern.predicate
            and fact.arity == pattern.arity
            and unify_with_fact(pattern, fact) is not None
        }
        assert matched == expected


# ---------------------------------------------------------------------------
# Engine invariants on random Datalog facts
# ---------------------------------------------------------------------------


class TestEngineProperties:
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.sets(st.tuples(constant_names, constant_names), max_size=12))
    def test_transitive_closure_is_transitive_and_contains_edges(self, edges):
        from repro.core.warded_engine import WardedEngine
        from repro.datalog.parser import parse_program

        program = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z)."
        )
        instance = Instance(
            Atom("e", (Constant(s), Constant(o))) for s, o in edges
        )
        result = WardedEngine(program).ground_semantics(instance)
        closure = {(a.terms[0], a.terms[1]) for a in result.with_predicate("t")}
        for source, target in edges:
            assert (Constant(source), Constant(target)) in closure
        for x, y in closure:
            for y2, z in closure:
                if y == y2:
                    assert (x, z) in closure

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.sets(st.tuples(constant_names, constant_names), max_size=10))
    def test_warded_engine_matches_seminaive_on_random_edge_sets(self, edges):
        from repro.core.warded_engine import WardedEngine
        from repro.datalog.parser import parse_program
        from repro.datalog.seminaive import SemiNaiveEvaluator

        program = parse_program(
            """
            e(?X, ?Y) -> t(?X, ?Y).
            t(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).
            e(?X, ?Y), not t(?Y, ?X) -> oneway(?X, ?Y).
            """
        )
        instance = Instance(Atom("e", (Constant(s), Constant(o))) for s, o in edges)
        warded = WardedEngine(program).ground_semantics(instance)
        seminaive = SemiNaiveEvaluator(program).evaluate(instance)
        assert warded.to_set() == seminaive.to_set()
