"""Differential fuzzing of the flat-buffer kernels.

:mod:`repro.engine.kernels` has three representations of the same candidate
extension over one predicate's rows: the reference semantics over plain ID
tuples, the pure-Python loops over the packed :class:`ColumnBuffer` lanes,
and the numpy bulk path that dispatches above :data:`kernels._MIN_BULK`.
All three must agree *exactly* — same surviving rows, same order, same bound
values — for every mix of tombstones, mixed arities (padded lanes), intra-row
equality constraints, and candidate shapes (postings-bucket lists vs full
``range`` scans, below and above the numpy dispatch threshold).

Two layers are pinned here, with fixed seeds so CI runs are reproducible:

* **kernel level** — :func:`kernels.extensions` and
  :func:`kernels.distinct_values` on randomly grown-and-killed buffers,
  numpy on vs off vs an independently computed tuple-space reference;
* **engine level** — a random stratified program evaluated in all three
  execution modes with the numpy kernels forced on and forced off: atoms,
  invented-null labels, and the gated counters must be byte-identical across
  the full 2×3 matrix (exactly what the CI numpy/pure legs rerun).
"""

import itertools
import random

import pytest

from repro.datalog.terms import Null
from repro.engine import kernels
from repro.engine.colbuf import ColumnBuffer
from repro.engine.mode import execution_mode
from repro.engine.parallel import parallel_threshold_override, shutdown_pool
from repro.engine.stats import STATS
from test_engine_batch_parity import random_datalog_program, random_instance
from test_engine_incremental_parity import ANCESTOR_CHASE_PROGRAM, person

requires_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy not importable"
)


@pytest.fixture(autouse=True)
def numpy_back_on():
    """Every test leaves the module-global dispatch flag enabled."""
    yield
    kernels.set_numpy_enabled(True)


@pytest.fixture(autouse=True)
def low_dispatch_threshold(monkeypatch):
    """Pin ``_MIN_BULK`` low so the fuzzed buffers (≤ 250 rows) actually
    reach the numpy kernels through the public dispatcher — the production
    threshold sits above the sizes these differential tests can afford."""
    monkeypatch.setattr(kernels, "_MIN_BULK", 8)
    monkeypatch.setattr(kernels, "_MIN_BULK_CSR", 4)
    monkeypatch.setattr(kernels, "_MIN_BULK_INTERSECT", 4)


@pytest.fixture(scope="module", autouse=True)
def stop_pool_after_module():
    yield
    shutdown_pool()


# ---------------------------------------------------------------------------
# Kernel level: packed buffers vs the tuple-space reference
# ---------------------------------------------------------------------------


def random_buffer(rng, n_rows, max_arity=4, universe=40):
    """A packed buffer plus its tuple-space shadow (None = tombstone).

    Rows mix arities (so the padded lanes carry PAD values the kernels must
    never surface) and ~15% are killed after insertion, leaving their
    position lanes intact under a tombstoned arity — exactly the state
    retraction produces.
    """
    cols = ColumnBuffer()
    rows = []
    for _ in range(n_rows):
        arity = rng.randint(1, max_arity)
        ids = tuple(rng.randrange(2, universe) for _ in range(arity))
        row_id = cols.append(ids, gid=len(rows))
        if rng.random() < 0.15:
            cols.kill(row_id)
            rows.append(None)
        else:
            rows.append(ids)
    return cols, rows


def reference_extensions(rows, candidate_ids, arity, bind_positions, intra_pairs):
    """The specified semantics, computed in tuple space only."""
    out = []
    for row_id in candidate_ids:
        ids = rows[row_id]
        if ids is None or len(ids) != arity:
            continue
        if any(ids[p] != ids[q] for p, q in intra_pairs):
            continue
        out.append(tuple(ids[p] for p in bind_positions))
    return out


def candidate_shapes(rng, n_rows):
    """Full scans and sorted postings-style buckets, small and bulk-sized."""
    shapes = [range(n_rows)]
    if n_rows:
        small = sorted(rng.sample(range(n_rows), min(n_rows, 5)))
        bulk = sorted(
            rng.sample(range(n_rows), min(n_rows, kernels._MIN_BULK + 10))
        )
        shapes += [small, bulk]
    return shapes


@pytest.mark.parametrize("seed", range(10))
def test_extensions_three_way_differential(seed):
    rng = random.Random(7000 + seed)
    cols, rows = random_buffer(rng, rng.randint(0, 200))
    for arity in (1, 2, 3, 4):
        positions = list(range(arity))
        bind_options = [
            tuple(positions),
            tuple(rng.sample(positions, rng.randint(1, arity))),
        ]
        intra_options = [()]
        if arity >= 2:
            pair = tuple(rng.sample(positions, 2))
            intra_options.append((pair,))
        for candidate_ids in candidate_shapes(rng, len(cols)):
            for bind_positions in bind_options:
                for intra_pairs in intra_options:
                    expected = reference_extensions(
                        rows, candidate_ids, arity, bind_positions, intra_pairs
                    )
                    got = {}
                    for flag in (False, True):
                        if flag and not kernels.numpy_available():
                            continue
                        kernels.set_numpy_enabled(flag)
                        got[flag] = kernels.extensions(
                            cols, candidate_ids, arity, bind_positions, intra_pairs
                        )
                    for flag, result in got.items():
                        assert [tuple(r) for r in result] == expected, (
                            f"numpy={flag} arity={arity} bind={bind_positions} "
                            f"intra={intra_pairs}"
                        )


@pytest.mark.parametrize("seed", range(6))
def test_distinct_values_differential(seed):
    rng = random.Random(8000 + seed)
    cols, rows = random_buffer(rng, rng.randint(0, 250))
    for position in range(4):
        expected = {
            ids[position]
            for ids in rows
            if ids is not None and len(ids) > position
        }
        results = {}
        for flag in (False, True):
            if flag and not kernels.numpy_available():
                continue
            kernels.set_numpy_enabled(flag)
            results[flag] = kernels.distinct_values(cols, position, len(cols))
        for flag, values in results.items():
            assert values is not None
            assert set(values) == expected, f"numpy={flag} position={position}"


def test_extensions_on_promoted_buffer_matches_heap():
    # Promotion pads the lanes out to segment capacity; the kernels must
    # clip at n_rows, not capacity, in both dispatch modes.
    rng = random.Random(99)
    cols, rows = random_buffer(rng, 150, max_arity=3)
    expected = reference_extensions(rows, range(len(cols)), 2, (0, 1), ())
    assert cols.promote() is not None
    try:
        for flag in (False, True):
            if flag and not kernels.numpy_available():
                continue
            kernels.set_numpy_enabled(flag)
            got = kernels.extensions(cols, range(len(cols)), 2, (0, 1), ())
            assert [tuple(r) for r in got] == expected
            values = kernels.distinct_values(cols, 0, len(cols))
            assert set(values) == {
                ids[0] for ids in rows if ids is not None and len(ids) > 0
            }
    finally:
        cols.demote()


# ---------------------------------------------------------------------------
# CSR postings kernels: dict-bucket reference vs pure vs numpy
# ---------------------------------------------------------------------------


def random_csr_lane(rng, n_tids, universe=400):
    """A CSR lane plus its dict-of-buckets shadow, built from plain ints.

    The layout mirrors what :class:`~repro.engine.index.CsrSealer` emits into
    shared memory — sorted tid directory, ``n_tids + 1`` prefix offsets, flat
    ascending row ids per bucket — but over ordinary ``array('q')`` values,
    so the kernel contract is pinned without any shm plumbing.  Empty
    buckets are included deliberately: replace-mode sealing emits every
    position of a predicate, hit or not.
    """
    from array import array

    tids = sorted(rng.sample(range(universe), n_tids))
    buckets = {}
    offsets = [0]
    rows = []
    next_row = 0
    for tid in tids:
        count = rng.randint(0, 6)
        span = range(next_row, next_row + 40)
        ids = sorted(rng.sample(span, count)) if count else []
        next_row += 40
        buckets[tid] = ids
        rows.extend(ids)
        offsets.append(len(rows))
    return buckets, array("q", tids), array("q", offsets), array("q", rows)


@pytest.mark.parametrize("seed", range(8))
def test_csr_find_three_way_differential(seed):
    rng = random.Random(11000 + seed)
    buckets, tids, offsets, rows = random_csr_lane(rng, rng.randint(0, 30))
    probes = set(buckets) | {rng.randrange(400) for _ in range(20)} | {-1, 401}
    for tid in sorted(probes):
        expected = buckets.get(tid)
        for flag in (False, True):
            if flag and not kernels.numpy_available():
                continue
            kernels.set_numpy_enabled(flag)
            got = kernels.csr_find(tids, offsets, rows, tid)
            if expected is None:
                assert got is None, f"numpy={flag} tid={tid}"
            else:
                assert got is not None and list(got) == expected, (
                    f"numpy={flag} tid={tid}"
                )


@pytest.mark.parametrize("seed", range(8))
def test_csr_intersect_three_way_differential(seed):
    rng = random.Random(12000 + seed)
    universe = 300
    # Buckets drawn from one shared row universe so intersections are
    # non-trivial; each is sorted ascending like a sealed CSR bucket.
    def bucket():
        return sorted(rng.sample(range(universe), rng.randint(0, 60)))

    for _ in range(10):
        anchor = bucket()
        others = [bucket() for _ in range(rng.randint(0, 3))]
        sets = [set(other) for other in others]
        expected = [
            row for row in anchor if all(row in other for other in sets)
        ]
        for flag in (False, True):
            if flag and not kernels.numpy_available():
                continue
            kernels.set_numpy_enabled(flag)
            got = kernels.csr_intersect(anchor, others)
            assert list(got) == expected, f"numpy={flag}"


# ---------------------------------------------------------------------------
# Engine level: numpy on/off × row/batch/parallel, byte-identical
# ---------------------------------------------------------------------------

WORKERS = 2


def run_mode_matrix(fn):
    """fn() under every (numpy, mode) pair; returns {(numpy, mode): ...}."""
    results = {}
    flags = [False] + ([True] if kernels.numpy_available() else [])
    for flag in flags:
        kernels.set_numpy_enabled(flag)
        for mode, workers, threshold in (
            ("row", None, None),
            ("batch", None, None),
            ("parallel", WORKERS, 0),
        ):
            with execution_mode(mode, workers):
                Null._counter = itertools.count()
                STATS.reset()
                if threshold is None:
                    results[(flag, mode)] = (fn(), STATS.gated())
                else:
                    with parallel_threshold_override(threshold):
                        results[(flag, mode)] = (fn(), STATS.gated())
    return results


@pytest.mark.parametrize("seed", range(4))
def test_mode_matrix_parity_random_programs(seed):
    rng = random.Random(9000 + seed)
    instance, constants = random_instance(rng, n_constants=5, n_facts=70)
    program = random_datalog_program(rng, constants)

    def evaluate():
        from repro.engine.incremental import DeltaSession

        session = DeltaSession(program, instance)
        atoms = session.instance.sorted_atoms()
        session.close()
        return atoms

    outcomes = run_mode_matrix(evaluate)
    baseline = next(iter(outcomes.values()))
    for key, outcome in outcomes.items():
        assert outcome[0] == baseline[0], f"atoms diverged under {key}"
        assert outcome[1] == baseline[1], f"gated counters diverged under {key}"


def test_mode_matrix_parity_chase_null_labels():
    # Invented-null spellings (content-addressed labels) are part of the
    # byte-identity contract, not just the atom sets.
    people = [person(f"p{i}") for i in range(6)]

    def evaluate():
        from repro.engine.incremental import DeltaSession

        session = DeltaSession(ANCESTOR_CHASE_PROGRAM, people)
        atoms = [str(a) for a in session.instance.sorted_atoms()]
        labels = sorted(n.label for n in session.instance.nulls())
        session.close()
        return atoms, labels

    outcomes = run_mode_matrix(evaluate)
    baseline = next(iter(outcomes.values()))
    for key, outcome in outcomes.items():
        assert outcome == baseline, f"diverged under {key}"
