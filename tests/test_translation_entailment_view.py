"""Parity: the ID-native materialized view vs the translated oracle.

Every answer set produced by :class:`EntailmentView` (one core
materialization, direct algebra over interned ``triple1`` rows) must be
byte-identical to :func:`evaluate_under_entailment` (full translated program
through the warded engine) — Theorem 5.3 / Definition 5.5 in both directions.
"""

import pytest

from repro.datalog.semantics import INCONSISTENT
from repro.datalog.terms import Variable
from repro.owl.model import Ontology, inverse, some
from repro.owl.rdf_mapping import ontology_to_graph
from repro.sparql.ast import BGP
from repro.sparql.mappings import Mapping
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import (
    EntailmentView,
    evaluate_under_entailment,
)
from repro.workloads.graphs import section2_g3
from repro.workloads.ontologies import university_ontology
from repro.workloads.queries import random_bgp, random_pattern

X = Variable("X")


def animal_graph():
    ontology = Ontology()
    ontology.assert_class("animal", "dog")
    ontology.sub_class("animal", some("eats"))
    return ontology_to_graph(ontology)


def herbivore_graph():
    ontology = Ontology()
    ontology.assert_class("animal", "dog")
    ontology.sub_class("animal", some("eats"))
    ontology.sub_class(some(inverse("eats")), "plant_material")
    return ontology_to_graph(ontology)


QUERY_TEXTS = (
    "SELECT ?X WHERE { ?X eats _:B }",
    "SELECT ?X WHERE { ?X rdf:type some_eats }",
    "SELECT ?X WHERE { ?X eats _:B . ?X rdf:type animal }",
    "SELECT ?X WHERE { ?X eats _:B . _:B rdf:type plant_material }",
)


class TestParityOnPaperExamples:
    @pytest.mark.parametrize("text", QUERY_TEXTS)
    @pytest.mark.parametrize("mode", ("U", "All"))
    def test_animal_and_herbivore_graphs(self, text, mode):
        query = parse_sparql(text)
        for graph in (animal_graph(), herbivore_graph()):
            view = EntailmentView(graph)
            assert view.evaluate(query, mode) == evaluate_under_entailment(
                query, graph, mode
            )

    def test_section2_g3_restriction_query(self):
        query = parse_sparql(
            """
            SELECT ?X WHERE {
              ?Y name ?X .
              ?Y rdf:type ?Z .
              ?Z rdf:type owl:Restriction .
              ?Z owl:onProperty is_author_of .
              ?Z owl:someValuesFrom owl:Thing
            }
            """
        )
        graph = section2_g3()
        view = EntailmentView(graph)
        oracle = evaluate_under_entailment(query, graph, "U")
        assert view.evaluate(query, "U") == oracle
        names = {mapping[X].value for mapping in view.evaluate(query, "U")}
        assert "Alfred Aho" in names

    def test_herbivore_example_exact_answers(self):
        query = parse_sparql(
            "SELECT ?X WHERE { ?X eats _:B . _:B rdf:type plant_material }"
        )
        view = EntailmentView(herbivore_graph())
        assert view.evaluate(query, "U") == set()
        assert view.evaluate(query, "All") == {Mapping({X: "dog"})}

    def test_inconsistent_ontology_returns_top(self):
        ontology = Ontology()
        ontology.disjoint_classes("Cat", "Dog")
        ontology.assert_class("Cat", "felix").assert_class("Dog", "felix")
        view = EntailmentView(ontology_to_graph(ontology))
        assert not view.consistent
        query = parse_sparql("SELECT ?X WHERE { ?X rdf:type Cat }")
        assert view.evaluate(query, "U") is INCONSISTENT

    def test_invalid_mode_rejected(self):
        view = EntailmentView(animal_graph())
        with pytest.raises(ValueError):
            view.evaluate(parse_sparql("SELECT ?X WHERE { ?X p ?Y }"), "bogus")


class TestParityOnUniversity:
    def test_class_and_role_queries_both_modes(self):
        graph = ontology_to_graph(
            university_ontology(n_departments=1, students_per_department=4)
        )
        view = EntailmentView(graph)
        for text in (
            "SELECT ?X WHERE { ?X rdf:type Person }",
            "SELECT ?X WHERE { ?X rdf:type Student }",
            "SELECT ?X WHERE { ?X worksFor _:B }",
            "SELECT ?X WHERE { ?X takesCourse _:B }",
        ):
            query = parse_sparql(text)
            for mode in ("U", "All"):
                assert view.evaluate(query, mode) == evaluate_under_entailment(
                    query, graph, mode
                ), (text, mode)


class TestParityFuzz:
    def test_random_bgps(self):
        graph = ontology_to_graph(
            university_ontology(n_departments=1, students_per_department=3)
        )
        view = EntailmentView(graph)
        for seed in range(6):
            bgp = random_bgp(graph, n_triples=2, n_variables=2, seed=seed)
            for mode in ("U", "All"):
                assert view.evaluate(bgp, mode) == evaluate_under_entailment(
                    bgp, graph, mode
                ), (seed, mode)

    def test_random_operator_patterns(self):
        graph = animal_graph()
        view = EntailmentView(graph)
        for seed in range(4):
            pattern = random_pattern(graph, depth=2, seed=seed)
            for mode in ("U", "All"):
                assert view.evaluate(pattern, mode) == evaluate_under_entailment(
                    pattern, graph, mode
                ), (seed, mode)

    def test_empty_bgp_matches_translation(self):
        graph = animal_graph()
        view = EntailmentView(graph)
        empty = BGP(())
        for mode in ("U", "All"):
            assert view.evaluate(empty, mode) == evaluate_under_entailment(
                empty, graph, mode
            )
