"""Tests for the vocabulary namespaces."""

from repro.datalog.terms import Constant
from repro.rdf.namespaces import OWL, RDF, RDFS, XSD, Namespace, common_prefixes


class TestNamespaces:
    def test_prefixed_constants(self):
        assert RDF.type == Constant("rdf:type")
        assert RDFS.subClassOf == Constant("rdfs:subClassOf")
        assert RDFS.subPropertyOf == Constant("rdfs:subPropertyOf")
        assert OWL.sameAs == Constant("owl:sameAs")
        assert OWL.Restriction == Constant("owl:Restriction")
        assert OWL.someValuesFrom == Constant("owl:someValuesFrom")
        assert OWL.inverseOf == Constant("owl:inverseOf")
        assert OWL.Thing == Constant("owl:Thing")

    def test_dynamic_attribute_access(self):
        assert XSD.integer == Constant("xsd:integer")
        assert OWL["disjointWith"] == Constant("owl:disjointWith")

    def test_custom_namespace(self):
        ex = Namespace("ex")
        assert ex.knows == Constant("ex:knows")
        assert ex.prefix == "ex"

    def test_common_prefixes(self):
        prefixes = common_prefixes()
        assert set(prefixes) == {"rdf", "rdfs", "owl", "xsd"}

    def test_paper_vocabulary_matches_rule_constants(self):
        """The constants used by tau_owl2ql_core are exactly the namespace constants."""
        from repro.owl.entailment_rules import owl2ql_core_program

        constants = {c.value for c in owl2ql_core_program().constants}
        assert "rdf:type" in constants
        assert "owl:Restriction" in constants
        assert "owl:someValuesFrom" in constants
        assert "rdfs:subClassOf" in constants
