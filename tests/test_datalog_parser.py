"""Unit tests for the rule/program parser."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import ParseError, parse_atom, parse_program, parse_rule
from repro.datalog.rules import Constraint, Rule
from repro.datalog.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestParseAtom:
    def test_simple(self):
        assert parse_atom("p(?X, a)") == Atom("p", (X, Constant("a")))

    def test_prefixed_names(self):
        atom = parse_atom("triple(?X, rdf:type, owl:Class)")
        assert atom.terms[1] == Constant("rdf:type")
        assert atom.terms[2] == Constant("owl:Class")

    def test_quoted_string(self):
        atom = parse_atom('name(?X, "Jeffrey Ullman")')
        assert atom.terms[1] == Constant("Jeffrey Ullman")

    def test_angle_uri(self):
        atom = parse_atom("same(<http://a.org/x>, ?Y)")
        assert atom.terms[0] == Constant("http://a.org/x")

    def test_zero_arity(self):
        assert parse_atom("yes()") == Atom("yes", ())

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p(?X) extra")


class TestParseRule:
    def test_plain_rule(self):
        rule = parse_rule("p(?X, ?Y), q(?Y) -> r(?X).")
        assert isinstance(rule, Rule)
        assert len(rule.body_positive) == 2 and rule.head[0].predicate == "r"

    def test_arrow_alternatives(self):
        assert parse_rule("p(?X) :- q(?X).") is not None or True  # ':-' reversed form parses as body->head
        rule = parse_rule("q(?X) -> p(?X).")
        assert rule.head[0].predicate == "p"

    def test_negation(self):
        rule = parse_rule("p(?X), not q(?X) -> r(?X).")
        assert rule.body_negative == (Atom("q", (X,)),)

    def test_existential(self):
        rule = parse_rule("p(?X) -> exists ?Y . s(?X, ?Y).")
        assert rule.existential_variables == {Y}

    def test_multiple_existentials(self):
        rule = parse_rule("p(?X) -> exists ?Y ?Z . s(?X, ?Y, ?Z).")
        assert rule.existential_variables == {Y, Z}

    def test_multi_atom_head(self):
        rule = parse_rule("triple(?X, ?Y, ?Z) -> C(?X), C(?Y), C(?Z).")
        assert len(rule.head) == 3

    def test_constraint(self):
        clause = parse_rule("p(?X), q(?X) -> false.")
        assert isinstance(clause, Constraint)
        assert len(clause.body) == 2

    def test_constraint_unicode_bottom(self):
        clause = parse_rule("p(?X) -> ⊥.")
        assert isinstance(clause, Constraint)

    def test_missing_dot_is_tolerated_for_single_rule(self):
        rule = parse_rule("p(?X) -> q(?X)")
        assert isinstance(rule, Rule)

    def test_exists_without_variables_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(?X) -> exists . q(?X).")

    def test_unsafe_negation_rejected(self):
        with pytest.raises(Exception):
            parse_rule("p(?X), not q(?Y) -> r(?X).")


class TestParseProgram:
    def test_comments_and_whitespace(self):
        program = parse_program(
            """
            % the transport example
            triple(?X, partOf, transportService) -> ts(?X).

            triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).   % recursion
            """
        )
        assert len(program.rules) == 2

    def test_mixed_rules_and_constraints(self):
        program = parse_program(
            """
            p(?X) -> q(?X).
            q(?X), r(?X) -> false.
            """
        )
        assert len(program.rules) == 1 and len(program.constraints) == 1

    def test_empty_program(self):
        program = parse_program("   % nothing here\n")
        assert len(program) == 0

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p(?X) -> q(?X) @.")

    def test_paper_example_41_parses(self):
        program = parse_program(
            """
            p(?X, ?Y), s(?Y, ?Z) -> exists ?W . t(?Y, ?X, ?W).
            t(?X, ?Y, ?Z) -> exists ?W . p(?W, ?Z).
            t(?X, ?Y, ?Z) -> s(?X, ?Y).
            """
        )
        assert len(program.rules) == 3
        assert sum(1 for r in program.rules if r.has_existentials) == 2
