"""Tests for the polynomial warded evaluation engine (Theorem 6.7 machinery)."""

import pytest

from repro.core.warded_engine import WardedEngine
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.program import Query
from repro.datalog.semantics import INCONSISTENT
from repro.datalog.terms import Constant


def db(*facts):
    return Database([parse_atom(f) for f in facts])


class TestWardedEngineBasics:
    def test_rejects_unwarded_programs(self):
        from repro.reductions.clique import clique_program

        with pytest.raises(ValueError):
            WardedEngine(clique_program())

    def test_plain_datalog_fixpoint(self):
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), e(?Y, ?Z) -> t(?X, ?Z).")
        engine = WardedEngine(program)
        ground = engine.ground_semantics(db("e(a,b)", "e(b,c)", "e(c,d)"))
        assert parse_atom("t(a,d)") in ground
        assert len(ground.with_predicate("t")) == 6

    def test_matches_seminaive_on_datalog(self):
        from repro.datalog.seminaive import SemiNaiveEvaluator

        program = parse_program(
            """
            e(?X, ?Y) -> conn(?X, ?Y).
            conn(?X, ?Y), e(?Y, ?Z) -> conn(?X, ?Z).
            node(?X), not conn(?X, ?X) -> acyclic(?X).
            """
        )
        database = db("node(a)", "node(b)", "e(a,b)", "e(b,b)")
        warded = WardedEngine(program).ground_semantics(database)
        seminaive = SemiNaiveEvaluator(program).evaluate(database)
        assert warded.to_set() == seminaive.to_set()

    def test_existential_rule_invents_typed_nulls(self):
        program = parse_program("person(?X) -> exists ?Y . parent(?X, ?Y).")
        engine = WardedEngine(program)
        result = engine.materialise(db("person(a)", "person(b)"))
        assert len(result.null_types) == 2
        assert len(result.instance.with_predicate("parent")) == 2

    def test_ground_semantics_excludes_null_atoms(self):
        program = parse_program("person(?X) -> exists ?Y . parent(?X, ?Y).")
        ground = WardedEngine(program).ground_semantics(db("person(a)"))
        assert len(ground.with_predicate("parent")) == 0
        assert parse_atom("person(a)") in ground


class TestWardedEngineTermination:
    def test_terminates_on_cyclic_existential_axioms(self):
        """A DL-Lite style cycle makes the restricted chase infinite; the engine must stop."""
        program = parse_program(
            """
            a(?X) -> exists ?Y . p(?X, ?Y).
            p(?X, ?Y) -> b(?Y).
            b(?X) -> exists ?Y . q(?X, ?Y).
            q(?X, ?Y) -> a(?Y).
            """
        )
        engine = WardedEngine(program)
        result = engine.materialise(db("a(c)"))
        assert parse_atom("a(c)") in result.instance
        # Finitely many null types: the materialisation is small.
        assert len(result.instance) < 50

    def test_ground_atoms_of_cyclic_program_are_complete(self):
        program = parse_program(
            """
            a(?X) -> exists ?Y . p(?X, ?Y).
            p(?X, ?Y) -> b(?Y).
            p(?X, ?Y) -> reached(?X).
            b(?X) -> exists ?Y . q(?X, ?Y).
            q(?X, ?Y) -> a(?Y).
            q(?X, ?Y) -> reachedq(?X).
            """
        )
        ground = WardedEngine(program).ground_semantics(db("a(c)"))
        assert parse_atom("reached(c)") in ground
        # Ground atoms never mention the invented witnesses.
        assert all(atom.is_ground for atom in ground)


class TestWardedEngineAgainstChase:
    def test_ground_semantics_agrees_with_generic_chase(self):
        """On terminating programs the engine and the stratified chase agree on Pi(D)↓."""
        from repro.datalog.semantics import evaluate_program

        program = parse_program(
            """
            emp(?X) -> exists ?Y . works_for(?X, ?Y).
            works_for(?X, ?Y), mgr(?X) -> boss(?X).
            emp(?X), not mgr(?X) -> worker(?X).
            """
        )
        database = db("emp(a)", "emp(b)", "mgr(a)")
        warded_ground = WardedEngine(program).ground_semantics(database)
        chase_ground = evaluate_program(program, database).ground_part()
        assert warded_ground.to_set() == chase_ground.to_set()

    def test_owl_entailment_fixed_program_agrees_with_chase(self):
        from repro.datalog.semantics import evaluate_program
        from repro.owl.entailment_rules import owl2ql_core_program
        from repro.workloads.ontologies import chain_ontology_graph

        program = owl2ql_core_program()
        database = chain_ontology_graph(3).to_database()
        warded_ground = WardedEngine(program).ground_semantics(database)
        chase_ground = evaluate_program(program, database).ground_part()
        assert warded_ground.to_set() == chase_ground.to_set()


class TestWardedEngineQueries:
    def test_evaluate_query(self):
        program = parse_program("p(?X) -> exists ?Y . s(?X, ?Y). s(?X, ?Y) -> hasS(?X).")
        engine = WardedEngine(program)
        query = Query(program, "hasS", 1)
        assert engine.evaluate_query(query, db("p(a)")) == {(Constant("a"),)}

    def test_constraints_yield_inconsistent(self):
        program = parse_program(
            """
            p(?X) -> q(?X).
            q(?X), bad(?X) -> false.
            """
        )
        engine = WardedEngine(program)
        query = Query(program, "missing", output_arity=1)
        assert engine.evaluate_query(query, db("p(a)", "bad(a)")) is INCONSISTENT
        assert not engine.is_consistent(db("p(a)", "bad(a)"))
        assert engine.is_consistent(db("p(a)"))

    def test_provenance_recorded(self):
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y).")
        engine = WardedEngine(program)
        result = engine.materialise(db("e(a,b)"))
        fact = parse_atom("t(a,b)")
        rule, body = result.provenance[fact]
        assert body == (parse_atom("e(a,b)"),)
