"""Tests for affected positions — including the paper's Example 4.1 verbatim."""

from repro.analysis.affected import affected_positions, nonaffected_positions
from repro.datalog.atoms import Position
from repro.datalog.parser import parse_program


def positions(names):
    return {Position(p, i) for p, i in names}


class TestAffectedPositions:
    def test_example_41(self):
        """Example 4.1: affected(Pi) = {t[3], p[1], t[2], p[2], s[2]}."""
        program = parse_program(
            """
            p(?X, ?Y), s(?Y, ?Z) -> exists ?W . t(?Y, ?X, ?W).
            t(?X, ?Y, ?Z) -> exists ?W . p(?W, ?Z).
            t(?X, ?Y, ?Z) -> s(?X, ?Y).
            """
        )
        assert affected_positions(program) == positions(
            {("t", 3), ("p", 1), ("t", 2), ("p", 2), ("s", 2)}
        )

    def test_example_41_nonaffected(self):
        program = parse_program(
            """
            p(?X, ?Y), s(?Y, ?Z) -> exists ?W . t(?Y, ?X, ?W).
            t(?X, ?Y, ?Z) -> exists ?W . p(?W, ?Z).
            t(?X, ?Y, ?Z) -> s(?X, ?Y).
            """
        )
        assert nonaffected_positions(program) == positions({("t", 1), ("s", 1)})

    def test_datalog_program_has_no_affected_positions(self):
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), e(?Y, ?Z) -> t(?X, ?Z).")
        assert affected_positions(program) == frozenset()

    def test_existential_position_is_affected(self):
        program = parse_program("p(?X) -> exists ?Y . s(?X, ?Y).")
        assert affected_positions(program) == positions({("s", 2)})

    def test_propagation_through_heads(self):
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            s(?X, ?Y) -> t(?Y).
            t(?X) -> u(?X, ?X).
            """
        )
        affected = affected_positions(program)
        assert Position("t", 1) in affected
        assert Position("u", 1) in affected and Position("u", 2) in affected

    def test_harmless_occurrence_blocks_propagation(self):
        # ?Y also occurs at the non-affected position base[1], so it is not
        # propagated even though it appears at an affected position too.
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            s(?X, ?Y), base(?Y) -> t(?Y).
            """
        )
        affected = affected_positions(program)
        assert Position("t", 1) not in affected

    def test_owl2ql_core_affected_positions(self):
        """The fixed entailment program: nulls live in triple1[1], triple1[3], type[1]."""
        from repro.owl.entailment_rules import owl2ql_core_program

        affected = affected_positions(owl2ql_core_program())
        assert Position("triple1", 3) in affected
        assert Position("triple1", 1) in affected
        assert Position("type", 1) in affected
        assert Position("triple1", 2) not in affected
        assert Position("sp", 1) not in affected
        assert Position("sc", 2) not in affected
        assert Position("C", 1) not in affected
