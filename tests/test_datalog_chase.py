"""Unit tests for the chase procedure."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine, ChaseNonTermination, match_atoms, satisfies_some
from repro.datalog.database import Database, Instance
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.terms import Constant, Null, Variable


def db(*facts):
    return Database([parse_atom(f) for f in facts])


class TestMatchAtoms:
    def test_join_two_atoms(self):
        instance = Instance([parse_atom("e(a,b)"), parse_atom("e(b,c)")])
        program = parse_program("e(?X, ?Y), e(?Y, ?Z) -> t(?X, ?Z).")
        rule = program.rules[0]
        matches = list(match_atoms(rule.body_positive, instance))
        assert len(matches) == 1
        assert matches[0][Variable("X")] == Constant("a")
        assert matches[0][Variable("Z")] == Constant("c")

    def test_initial_binding_respected(self):
        instance = Instance([parse_atom("e(a,b)"), parse_atom("e(c,d)")])
        pattern = [Atom("e", (Variable("X"), Variable("Y")))]
        matches = list(match_atoms(pattern, instance, initial={Variable("X"): Constant("c")}))
        assert len(matches) == 1 and matches[0][Variable("Y")] == Constant("d")

    def test_no_match(self):
        instance = Instance([parse_atom("e(a,b)")])
        assert list(match_atoms([parse_atom("f(?X, ?Y)")], instance)) == []

    def test_satisfies_some(self):
        instance = Instance([parse_atom("p(a)")])
        assert satisfies_some([Atom("p", (Variable("X"),))], instance, {Variable("X"): Constant("a")})
        assert not satisfies_some(
            [Atom("p", (Variable("X"),))], instance, {Variable("X"): Constant("b")}
        )


class TestChaseDatalog:
    def test_transitive_closure(self):
        program = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y). e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z)."
        )
        result = ChaseEngine().chase(db("e(a,b)", "e(b,c)", "e(c,d)"), program)
        assert parse_atom("t(a,d)") in result.instance
        assert result.completed
        assert len(result.instance.with_predicate("t")) == 6

    def test_multi_atom_head(self):
        program = parse_program("triple(?X, ?Y, ?Z) -> C(?X), C(?Y), C(?Z).")
        result = ChaseEngine().chase(db("triple(a, p, b)"), program)
        assert len(result.instance.with_predicate("C")) == 3


class TestChaseExistential:
    def test_invents_nulls(self):
        program = parse_program("person(?X) -> exists ?Y . parent(?X, ?Y).")
        result = ChaseEngine().chase(db("person(alice)"), program)
        parents = list(result.instance.with_predicate("parent"))
        assert len(parents) == 1
        assert isinstance(parents[0].terms[1], Null)
        assert result.invented_nulls == 1

    def test_restricted_chase_does_not_refire_satisfied_heads(self):
        program = parse_program(
            """
            person(?X) -> exists ?Y . parent(?X, ?Y).
            parent(?X, ?Y) -> person(?X).
            """
        )
        result = ChaseEngine().chase(db("person(alice)", "parent(alice, bob)"), program)
        # alice already has a parent, so no null should be invented for her
        assert result.invented_nulls == 0

    def test_oblivious_chase_fires_every_trigger_once(self):
        program = parse_program("person(?X) -> exists ?Y . parent(?X, ?Y).")
        restricted = ChaseEngine(restricted=True).chase(
            db("person(alice)", "parent(alice, bob)"), program
        )
        oblivious = ChaseEngine(restricted=False).chase(
            db("person(alice)", "parent(alice, bob)"), program
        )
        assert restricted.invented_nulls == 0
        assert oblivious.invented_nulls == 1

    def test_shared_nulls_across_head_atoms(self):
        program = parse_program(
            "coauthor(?X, ?Y) -> exists ?Z . author_of(?X, ?Z), author_of(?Y, ?Z)."
        )
        result = ChaseEngine().chase(db("coauthor(aho, ullman)"), program)
        atoms = list(result.instance.with_predicate("author_of"))
        assert len(atoms) == 2
        nulls = {a.terms[1] for a in atoms}
        assert len(nulls) == 1  # the same blank node witnesses both

    def test_restricted_chase_terminates_on_self_satisfying_rule(self):
        # p(a) already provides a witness for the head, so the restricted
        # chase must not invent anything.
        program = parse_program("p(?X) -> exists ?Y . p(?Y).")
        result = ChaseEngine().chase(db("p(a)"), program)
        assert result.completed and result.invented_nulls == 0

    def test_infinite_chase_stopped_by_depth_bound(self):
        program = parse_program("p(?X) -> exists ?Y . q(?X, ?Y). q(?X, ?Y) -> p(?Y).")
        result = ChaseEngine(max_null_depth=5, on_limit="stop").chase(db("p(a)"), program)
        assert not result.completed
        assert result.limit_reason is not None

    def test_infinite_chase_raises_when_asked(self):
        program = parse_program("p(?X) -> exists ?Y . q(?X, ?Y). q(?X, ?Y) -> p(?Y).")
        with pytest.raises(ChaseNonTermination):
            ChaseEngine(max_null_depth=3, on_limit="raise").chase(db("p(a)"), program)

    def test_max_steps_guard(self):
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).")
        facts = [f"e(v{i}, v{i + 1})" for i in range(30)]
        result = ChaseEngine(max_steps=10, on_limit="stop").chase(db(*facts), program)
        assert not result.completed


class TestChaseNegation:
    def test_negation_against_reference(self):
        program = parse_program("node(?X), not banned(?X) -> ok(?X).")
        database = db("node(a)", "node(b)", "banned(b)")
        reference = Instance(database)
        result = ChaseEngine().chase(database, program, negation_reference=reference)
        assert parse_atom("ok(a)") in result.instance
        assert parse_atom("ok(b)") not in result.instance
