"""Epoch-based TermTable lifecycle: null-space reclamation + reset hooks."""

from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Null
from repro.engine import interning, plan
from repro.engine.interning import TERMS, TermTable


class TestSecondaryTableEpochs:
    """Lifecycle mechanics on a private (non-memoising) table."""

    def test_begin_epoch_drops_nulls_keeps_constants(self):
        table = TermTable()
        cid = table.intern_constant("alice")
        table.intern_null("n0")
        table.intern_null("n1")
        assert table.counts() == (1, 2)

        assert table.begin_epoch() == 1
        assert table.counts() == (1, 0)
        assert table.epoch() == 1
        # Constants keep their IDs across the reset...
        assert table.intern_constant("alice") == cid
        # ...while the null space restarts dense from zero.
        assert table.intern_null("fresh") == 1

    def test_null_ids_are_reused_across_epochs(self):
        table = TermTable()
        first = table.intern_null("epoch0-null")
        table.begin_epoch()
        second = table.intern_null("epoch1-null")
        assert first == second  # same dense slot, different label
        assert table.term(second).label == "epoch1-null"

    def test_epoch_starts_at_zero(self):
        assert TermTable().epoch() == 0


class TestGlobalTableEpochs:
    """The process-global TERMS table: memo hygiene and hook dispatch."""

    def test_canonical_null_memos_are_cleared(self):
        tid = TERMS.intern_null("__epoch_test_null__")
        stale = TERMS.term(tid)
        assert stale._tid == tid
        TERMS.begin_epoch()
        # The stale object can no longer resurrect its reassigned ID.
        assert stale._tid is None
        assert TERMS.find_term(Null("__epoch_test_null__")) is None

    def test_constant_memos_survive(self):
        tid = TERMS.intern_constant("__epoch_test_constant__")
        term = TERMS.term(tid)
        TERMS.begin_epoch()
        assert term._tid == tid
        assert TERMS.intern_term(Constant("__epoch_test_constant__")) == tid

    def test_plan_caches_are_dropped_by_the_hook(self):
        program = parse_program("q(?X) :- p(?X).")
        plan.compile_rule(program.rules[0])
        assert plan._RULE_CACHE
        TERMS.begin_epoch()
        assert not plan._RULE_CACHE
        assert not plan._BODY_CACHE
        assert not plan._PIVOT_CACHE
        # Recompilation after the reset works and repopulates the cache.
        plan.compile_rule(program.rules[0])
        assert plan._RULE_CACHE

    def test_custom_hook_runs_once_per_reset(self):
        calls = []

        def hook():
            calls.append(TERMS.epoch())

        try:
            interning.register_epoch_hook(hook)
            interning.register_epoch_hook(hook)  # duplicate is ignored
            before = TERMS.epoch()
            TERMS.begin_epoch()
            # Hooks run before the bump: they observe the closing epoch.
            assert calls == [before]
        finally:
            interning._EPOCH_HOOKS.remove(hook)

    def test_materialization_works_after_reset(self):
        """An existential chase in a fresh epoch re-invents nulls from slot 0."""
        from repro.datalog.atoms import Atom
        from repro.datalog.database import Database
        from repro.datalog.semantics import evaluate_program

        program = parse_program("person(?X) -> exists ?Y . parent(?X, ?Y).")

        def fresh_db():
            db = Database()
            db.add(Atom("person", (Constant("alice"),)))
            return db

        first = evaluate_program(program, fresh_db())
        nulls_before = TERMS.counts()[1]
        assert nulls_before > 0
        TERMS.begin_epoch()
        assert TERMS.counts()[1] == 0
        second = evaluate_program(program, fresh_db())
        # Same facts modulo null identity; same number of inventions.
        assert len(first) == len(second)
        assert TERMS.counts()[1] <= nulls_before
