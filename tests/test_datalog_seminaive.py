"""Unit tests for semi-naive evaluation of Datalog with stratified negation."""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.rules import RuleError
from repro.datalog.seminaive import SemiNaiveEvaluator


def db(*facts):
    return Database([parse_atom(f) for f in facts])


class TestSemiNaive:
    def test_transitive_closure(self):
        program = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), e(?Y, ?Z) -> t(?X, ?Z)."
        )
        evaluator = SemiNaiveEvaluator(program)
        facts = evaluator.facts_of(db("e(a,b)", "e(b,c)", "e(c,d)"), "t")
        assert parse_atom("t(a,d)") in facts
        assert len(facts) == 6

    def test_matches_chase_on_positive_programs(self):
        from repro.datalog.chase import ChaseEngine

        program = parse_program(
            """
            e(?X, ?Y) -> conn(?X, ?Y).
            conn(?X, ?Y), e(?Y, ?Z) -> conn(?X, ?Z).
            conn(?X, ?Y), conn(?Y, ?X) -> cycle(?X).
            """
        )
        database = db("e(a,b)", "e(b,a)", "e(b,c)")
        seminaive = SemiNaiveEvaluator(program).evaluate(database)
        chase = ChaseEngine().chase(database, program).instance
        assert seminaive.to_set() == chase.to_set()

    def test_stratified_negation(self):
        program = parse_program(
            """
            e(?X, ?Y) -> reach(?X, ?Y).
            reach(?X, ?Y), e(?Y, ?Z) -> reach(?X, ?Z).
            node(?X), node(?Y), not reach(?X, ?Y) -> unreachable(?X, ?Y).
            """
        )
        database = db("node(a)", "node(b)", "node(c)", "e(a,b)")
        evaluator = SemiNaiveEvaluator(program)
        unreachable = evaluator.facts_of(database, "unreachable")
        assert parse_atom("unreachable(b, c)") in unreachable
        assert parse_atom("unreachable(a, b)") not in unreachable

    def test_two_levels_of_negation(self):
        program = parse_program(
            """
            p(?X), not q(?X) -> r(?X).
            p(?X), not r(?X) -> s(?X).
            """
        )
        database = db("p(a)", "p(b)", "q(b)")
        evaluator = SemiNaiveEvaluator(program)
        result = evaluator.evaluate(database)
        assert parse_atom("r(a)") in result and parse_atom("r(b)") not in result
        assert parse_atom("s(b)") in result and parse_atom("s(a)") not in result

    def test_rejects_existential_rules(self):
        program = parse_program("p(?X) -> exists ?Y . q(?X, ?Y).")
        with pytest.raises(RuleError):
            SemiNaiveEvaluator(program)

    def test_constraint_detection(self):
        program = parse_program(
            """
            p(?X) -> q(?X).
            q(?X), bad(?X) -> false.
            """
        )
        evaluator = SemiNaiveEvaluator(program)
        instance = evaluator.evaluate(db("p(a)", "bad(a)"))
        assert evaluator.violated_constraints(instance) == [0]
        instance_ok = evaluator.evaluate(db("p(a)"))
        assert evaluator.violated_constraints(instance_ok) == []

    def test_multi_head_rules(self):
        program = parse_program("triple(?X, ?Y, ?Z) -> dom(?X), dom(?Z).")
        result = SemiNaiveEvaluator(program).evaluate(db("triple(a, p, b)"))
        assert parse_atom("dom(a)") in result and parse_atom("dom(b)") in result

    def test_empty_database(self):
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y).")
        result = SemiNaiveEvaluator(program).evaluate(Database())
        assert len(result) == 0
