"""Shard determinism: the parallel executor vs batch vs row, byte for byte.

The sharded parallel executor promises *exact* parity with the in-process
executors: hash-partitioning step-0 candidates across workers and merging
the per-shard streams by global insertion ordinal must reconstruct the
single-process match order, so engine results, invented-null sequences, and
the mode-independent counters are identical in ``row``, ``batch``, and
``parallel`` modes.  This suite locks that in at three levels:

* **shard level** — :class:`~repro.engine.shard.ShardedInstance` partitions
  are disjoint, complete, and stable across processes (CRC-based keys);
* **match level** — merging :func:`~repro.engine.shard.run_batch_sharded`
  over all shards equals ``JoinPlan.run_batch`` row for row *in order*, on
  the same fuzz corpus the batch suite uses (no processes involved: the
  merge contract itself is what is being tested);
* **engine level** — all three engines produce atom-for-atom identical
  instances (and null sequences, and gated counters) under
  ``REPRO_ENGINE_PARALLEL=2`` with the dispatch threshold forced to 0, so
  every match actually crosses the process boundary.
"""

import itertools
import random

import pytest

from repro.core.warded_engine import WardedEngine
from repro.datalog.chase import ChaseEngine
from repro.datalog.database import Instance
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.terms import Null
from repro.engine.mode import execution_mode
from repro.engine.parallel import (
    parallel_threshold_override,
    shutdown_pool,
)
from repro.engine.plan import compile_body
from repro.engine.shard import ShardedInstance, merge_sharded, run_batch_sharded, shard_of
from repro.engine.stats import STATS
from test_engine_batch_parity import (
    random_body,
    random_datalog_program,
    random_instance,
    random_rdf_graph,
)

WORKERS = 2


@pytest.fixture(scope="module", autouse=True)
def stop_pool_after_module():
    yield
    shutdown_pool()


# ---------------------------------------------------------------------------
# Shard level
# ---------------------------------------------------------------------------


class TestSharding:
    def test_partition_is_complete_and_disjoint(self):
        rng = random.Random(0)
        instance, _ = random_instance(rng, n_constants=8, n_facts=120)
        for n_shards in (1, 2, 3, 5):
            sharded = ShardedInstance.mirror(instance, n_shards)
            total = 0
            seen = set()
            for s in range(n_shards):
                shard = sharded.shard(s)
                for predicate, rows in shard.index.rows.items():
                    assert len(rows) == len(shard.gids[predicate])
                    for fact in rows:
                        assert shard_of(fact, n_shards) == s
                        assert fact not in seen
                        seen.add(fact)
                        total += 1
            assert total == len(instance)

    def test_gids_match_instance_ordinals_and_ascend(self):
        rng = random.Random(1)
        instance, _ = random_instance(rng, n_constants=6, n_facts=80)
        sharded = ShardedInstance.mirror(instance, 3)
        for s in range(3):
            shard = sharded.shard(s)
            for predicate, rows in shard.index.rows.items():
                gids = shard.gids[predicate]
                assert gids == sorted(gids)
                for fact, gid in zip(rows, gids):
                    assert instance._ordinals[fact] == gid

    def test_keep_stores_only_one_shard(self):
        rng = random.Random(2)
        instance, _ = random_instance(rng, n_constants=5, n_facts=40)
        kept = ShardedInstance(4, keep=1)
        for atom in instance:
            kept.ingest(atom, instance._ordinals[atom])
        mirror = ShardedInstance.mirror(instance, 4)
        assert kept.shard(1).index.live == mirror.shard(1).index.live
        with pytest.raises(ValueError):
            kept.shard(0)

    def test_shard_keys_are_stable_across_processes(self):
        # CRC-based, not the seed-randomised built-in hash: a forked (or
        # even freshly spawned) worker must route facts identically.
        import os
        import subprocess
        import sys

        script = (
            "from repro.datalog.atoms import Atom\n"
            "from repro.datalog.terms import Constant, Null\n"
            "from repro.engine.shard import shard_of\n"
            "atoms = [Atom('e', (Constant('a'), Constant('b'))),"
            " Atom('p', (Null('_:z1'), Constant('c'))), Atom('q', ())]\n"
            "print([shard_of(a, 7) for a in atoms])\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant

        atoms = [
            Atom("e", (Constant("a"), Constant("b"))),
            Atom("p", (Null("_:z1"), Constant("c"))),
            Atom("q", ()),
        ]
        assert result.stdout.strip() == str([shard_of(a, 7) for a in atoms])


# ---------------------------------------------------------------------------
# Match level: merge(shards) == run_batch, in order
# ---------------------------------------------------------------------------


def assert_sharded_merge_parity(body, instance, n_shards=3):
    plan = compile_body(tuple(body))
    if not plan.steps:
        return
    expected = plan.run_batch(instance)
    sharded = ShardedInstance.mirror(instance, n_shards)
    parts = [
        run_batch_sharded(plan, sharded.shard(s), instance) for s in range(n_shards)
    ]
    assert merge_sharded(parts) == expected  # exact order, not just content
    for gids, rows in parts:
        assert len(gids) == len(rows)
        assert gids == sorted(gids)


class TestMatchLevelMerge:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_bodies(self, seed):
        rng = random.Random(seed)
        instance, constants = random_instance(rng, n_constants=6, n_facts=90)
        for n_atoms in (1, 2, 3):
            for _ in range(4):
                body = random_body(rng, constants, n_atoms)
                assert_sharded_merge_parity(body, instance)

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_shard_count_never_changes_the_merge(self, n_shards):
        rng = random.Random(17)
        instance, constants = random_instance(rng, n_constants=5, n_facts=70)
        for _ in range(6):
            body = random_body(rng, constants, 2)
            assert_sharded_merge_parity(body, instance, n_shards=n_shards)

    def test_delta_window_restricts_step0_candidates(self):
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant, Variable

        instance = Instance()
        for i in range(30):
            instance.add(Atom("e", (Constant(f"a{i}"), Constant(f"a{i + 1}"))))
        plan = compile_body((Atom("e", (Variable("X"), Variable("Y"))),))
        sharded = ShardedInstance.mirror(instance, 3)
        lo, hi = 10, 25
        parts = [
            run_batch_sharded(plan, sharded.shard(s), instance, lo, hi)
            for s in range(3)
        ]
        merged = merge_sharded(parts)
        expected = plan.run_batch(instance)[lo:hi]
        assert merged == expected
        for gids, _ in parts:
            assert all(lo <= gid < hi for gid in gids)


# ---------------------------------------------------------------------------
# Engine level: three modes, forced through the worker pool
# ---------------------------------------------------------------------------


def run_three_modes(fn):
    """fn() per mode (parallel forced through 2 workers); {mode: (result, counters)}."""
    results = {}
    for mode, workers, threshold in (
        ("row", None, None),
        ("batch", None, None),
        ("parallel", WORKERS, 0),
    ):
        with execution_mode(mode, workers):
            Null._counter = itertools.count()
            STATS.reset()
            if threshold is None:
                results[mode] = (fn(), STATS.gated())
            else:
                with parallel_threshold_override(threshold):
                    results[mode] = (fn(), STATS.gated())
    return results


def assert_three_mode_parity(outcome):
    assert outcome["row"][0] == outcome["batch"][0] == outcome["parallel"][0]
    assert outcome["row"][1] == outcome["batch"][1] == outcome["parallel"][1]


class TestEngineLevelParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_seminaive_fuzzed_programs(self, seed):
        rng = random.Random(400 + seed)
        instance, constants = random_instance(rng, n_constants=5, n_facts=50)
        program = random_datalog_program(rng, constants)
        database = list(instance)
        outcome = run_three_modes(
            lambda: list(SemiNaiveEvaluator(program).evaluate(database))
        )
        assert_three_mode_parity(outcome)

    def test_seminaive_transitive_closure_with_negation(self):
        graph = random_rdf_graph(n_triples=150, n_nodes=20, seed=5)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
            """
        )
        database = graph.to_database()
        outcome = run_three_modes(
            lambda: list(SemiNaiveEvaluator(program).evaluate(database))
        )
        assert_three_mode_parity(outcome)

    def test_chase_with_existentials_null_sequences(self):
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant

        program = parse_program(
            """
            person(?X) -> exists ?Y . parent(?X, ?Y), person(?Y).
            parent(?X, ?Y) -> ancestor(?X, ?Y).
            ancestor(?X, ?Y), parent(?Y, ?Z) -> ancestor(?X, ?Z).
            """
        )
        database = [Atom("person", (Constant(f"p{i}"),)) for i in range(12)] + [
            Atom("parent", (Constant(f"p{i}"), Constant(f"p{i + 1}")))
            for i in range(11)
        ]
        outcome = run_three_modes(
            lambda: list(
                ChaseEngine(max_null_depth=2, on_limit="stop")
                .chase(database, program)
                .instance
            )
        )
        # Atom-for-atom equality covers the invented-null *labels*, i.e. the
        # exact global invention sequence.
        assert_three_mode_parity(outcome)

    def test_warded_materialisation_with_provenance(self):
        graph = random_rdf_graph(n_triples=100, n_nodes=16, seed=8)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> exists ?Z . contact(?Y, ?Z).
            contact(?X, ?Z), knows(?W, ?X) -> reachable(?W, ?X).
            knows(?X, ?Y), not reachable(?X, ?Y) -> pending(?X, ?Y).
            """
        )
        database = graph.to_database()

        def materialise():
            result = WardedEngine(program).materialise(database)
            return list(result.instance), sorted(result.provenance, key=str)

        outcome = run_three_modes(materialise)
        assert_three_mode_parity(outcome)

    def test_parallel_dispatch_actually_crosses_processes(self):
        graph = random_rdf_graph(n_triples=120, n_nodes=18, seed=9)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            """
        )
        database = graph.to_database()
        with execution_mode("parallel", WORKERS), parallel_threshold_override(0):
            STATS.reset()
            SemiNaiveEvaluator(program).evaluate(database)
            assert STATS.parallel_tasks > 0

    def test_threshold_fallback_is_equivalent_and_counted(self):
        graph = random_rdf_graph(n_triples=80, n_nodes=14, seed=10)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            knows(?X, ?Y) -> connected(?X, ?Y).
            """
        )
        database = graph.to_database()
        with execution_mode("batch"):
            STATS.reset()
            expected = list(SemiNaiveEvaluator(program).evaluate(database))
            gated = STATS.gated()
        with execution_mode("parallel", WORKERS), parallel_threshold_override(10**9):
            STATS.reset()
            fell_back = list(SemiNaiveEvaluator(program).evaluate(database))
            assert STATS.parallel_tasks == 0
            assert STATS.parallel_fallbacks > 0
            assert STATS.gated() == gated
        assert fell_back == expected

    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_count_never_changes_results(self, workers):
        graph = random_rdf_graph(n_triples=90, n_nodes=15, seed=11)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            """
        )
        database = graph.to_database()
        with execution_mode("batch"):
            expected = list(SemiNaiveEvaluator(program).evaluate(database))
        with execution_mode("parallel", workers), parallel_threshold_override(0):
            got = list(SemiNaiveEvaluator(program).evaluate(database))
        assert got == expected

    def test_noncontiguous_delta_window_is_rejected(self):
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant
        from repro.engine.parallel import ParallelSession

        instance = Instance(
            [Atom("e", (Constant(f"a{i}"), Constant(f"a{i + 1}"))) for i in range(10)]
        )
        session = ParallelSession(instance, [], WORKERS)
        atoms = list(instance)

        contiguous = Instance()
        for atom in atoms[3:7]:
            contiguous.add_fact(atom)
        assert session._delta_window(contiguous) == (3, 7)

        gapped = Instance()
        for index in (3, 9, 5):  # span/count alone would accept this
            gapped.add_fact(atoms[index])
        assert session._delta_window(gapped) is None

        foreign = Instance()
        foreign.add_fact(Atom("e", (Constant("x"), Constant("y"))))
        assert session._delta_window(foreign) is None

    def test_tombstoned_instance_still_dispatches_with_parity(self):
        # Since the deletion half of the wire protocol landed, tombstones no
        # longer disable dispatch: dead rows ship as placeholders (replica
        # row ids stay parent-aligned) and logged deletions are replayed on
        # the replicas, so a retraction-scarred instance distributes its
        # matching exactly like a pristine one.
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant

        graph = random_rdf_graph(n_triples=100, n_nodes=15, seed=14)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            """
        )

        def tombstoned_instance():
            instance = Instance(graph.to_database())
            # One deletion of an old row, one append-then-delete (a dead
            # placeholder in the first sync window).
            victim = next(iter(instance))
            instance.discard(victim)
            doomed = Atom("e", (Constant("tmp"), Constant("tmp")))
            instance.add(doomed)
            instance.discard(doomed)
            return instance

        with execution_mode("batch"):
            expected = list(
                ChaseEngine()
                .chase(tombstoned_instance(), program, reuse_instance=True)
                .instance
            )
        with execution_mode("parallel", WORKERS), parallel_threshold_override(0):
            STATS.reset()
            got = list(
                ChaseEngine()
                .chase(tombstoned_instance(), program, reuse_instance=True)
                .instance
            )
            assert STATS.parallel_tasks > 0
        assert got == expected

    def test_nested_engine_runs_rearm_the_pool(self):
        # A warded run interleaved between two halves of a semi-naive run
        # (here: two back-to-back runs sharing the pool) must not leak one
        # session's replica state into the other.
        tc = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            """
        )
        g1 = random_rdf_graph(n_triples=100, n_nodes=15, seed=12).to_database()
        g2 = random_rdf_graph(n_triples=100, n_nodes=15, seed=13).to_database()
        with execution_mode("batch"):
            expected1 = list(SemiNaiveEvaluator(tc).evaluate(g1))
            expected2 = list(SemiNaiveEvaluator(tc).evaluate(g2))
        with execution_mode("parallel", WORKERS), parallel_threshold_override(0):
            assert list(SemiNaiveEvaluator(tc).evaluate(g1)) == expected1
            assert list(SemiNaiveEvaluator(tc).evaluate(g2)) == expected2
            assert list(SemiNaiveEvaluator(tc).evaluate(g1)) == expected1
