"""Service observability: /metrics e2e, stats fold-in, and the STATS race.

Three concerns:

* the reader-path regression — concurrent queries must neither corrupt the
  process-global engine counter blob (reader threads bind a thread-local
  scratch blob) nor lose ``queries_served`` increments (serialized in
  :meth:`MaterializedView.record_query`);
* the maintenance surface — tombstone ratios, term-table size, pinned
  readers — in ``stats()`` and the Prometheus gauges;
* the exposition itself, fetched over a real socket from a live
  :class:`QueryService`.
"""

import json
import sys
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine.stats import STATS, active_stats, local_stats
from repro.service.view import MaterializedView
from repro.workloads.ontologies import university_graph

from test_service_http import ServiceClient

QUERY = "SELECT ?X WHERE { ?X rdf:type Student }"


@pytest.fixture
def view():
    materialized = MaterializedView(
        university_graph(n_departments=1, students_per_department=4)
    )
    yield materialized
    materialized.close()


class TestLocalStats:
    def test_active_stats_defaults_to_global(self):
        assert active_stats() is STATS

    def test_local_stats_binds_and_restores(self):
        with local_stats() as scratch:
            assert active_stats() is scratch
            with local_stats() as nested:
                assert active_stats() is nested
            assert active_stats() is scratch
        assert active_stats() is STATS

    def test_read_scope_shields_global_blob(self, view):
        before = STATS.snapshot()
        with view.read():
            active_stats().pivots_skipped += 100
        assert STATS.snapshot() == before


class TestQueryAccountingRace:
    def test_hammering_readers_lose_no_counts_and_leave_stats_alone(self, view):
        """Regression: racing readers must not corrupt counters.

        Before the fix, ``queries_served += 1`` ran unserialized on every
        reader thread (a lost-update race) and reader-side engine work hit
        the process-global STATS blob.  Shrinking the switch interval makes
        the preemption window easy to hit.
        """
        n_threads, per_thread = 8, 40
        view.slow_query_ms = float("inf")
        served_before = view.queries_served
        stats_before = STATS.snapshot()
        start_barrier = threading.Barrier(n_threads)
        errors = []

        def hammer():
            try:
                start_barrier.wait(timeout=30)
                for _ in range(per_thread):
                    view.query(QUERY)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            threads = [
                threading.Thread(target=hammer) for _ in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        finally:
            sys.setswitchinterval(interval)

        assert not errors
        assert view.queries_served - served_before == n_threads * per_thread
        assert STATS.snapshot() == stats_before


class TestSlowQueryLog:
    def test_slow_queries_logged_with_attribution(self, view):
        view.slow_query_ms = 0.0
        view.query(QUERY)
        entries = view.stats()["slow_queries"]
        assert entries, "a 0ms threshold must log every query"
        entry = entries[-1]
        assert entry["mode"] == "U"
        assert entry["ms"] >= 0
        assert entry["watermark"] == view.watermark
        assert entry["epoch"] == view.epoch
        assert "Student" in entry["query"]

    def test_fast_queries_stay_out_of_the_log(self, view):
        view.slow_query_ms = float("inf")
        before = len(view.stats()["slow_queries"])
        view.query(QUERY)
        assert len(view.stats()["slow_queries"]) == before

    def test_log_is_bounded(self, view):
        view.slow_query_ms = 0.0
        for _ in range(40):
            view.query(QUERY)
        assert len(view.stats()["slow_queries"]) <= 32


class TestMaintenanceSurface:
    def test_stats_carries_maintenance_and_metrics(self, view):
        view.query(QUERY)
        document = view.stats()
        health = document["maintenance"]
        assert health["readers_pinned"] == 0
        assert health["term_table"]["epoch"] == view.epoch
        triple = health["predicates"]["triple"]
        assert triple["live"] > 0
        assert triple["tombstone_ratio"] == 0.0
        assert "repro_queries_total" in document["metrics"]
        json.dumps(document)

    def test_retraction_raises_tombstone_ratio(self, view):
        retractable = ("student_0_0", "rdf:type", "Student")
        view.push([retractable])
        view.retract([retractable])
        health = view.maintenance()
        assert any(
            entry["tombstone_ratio"] > 0
            for entry in health["predicates"].values()
        )

    def test_readers_pinned_counts_active_reads(self, view):
        with view.read():
            assert view.maintenance()["readers_pinned"] == 1
        assert view.maintenance()["readers_pinned"] == 0

    def test_compactions_surface_per_predicate(self, view):
        from repro.engine.index import compact_ratio, set_compact_ratio

        health = view.maintenance()
        assert all(
            entry["compactions"] == 0 for entry in health["predicates"].values()
        )
        # Force the ratio low enough that churning a batch of fresh triples
        # in and out trips compaction, then check the per-predicate counts
        # both surface and reconcile with the lane going clean again.  The
        # retraction goes in small bites: evicting the whole batch at once
        # trips the degeneration guard instead (cold rebuild, fresh lanes,
        # nothing to compact).
        churn = [(f"tmp_{i}", "rdf:type", "Student") for i in range(600)]
        previous = compact_ratio()
        set_compact_ratio(0.05)
        try:
            view.push(churn)
            for k in range(0, len(churn), 40):
                view.retract(churn[k : k + 40])
        finally:
            set_compact_ratio(previous)
        health = view.maintenance()
        compacted = {
            predicate: entry
            for predicate, entry in health["predicates"].items()
            if entry["compactions"] > 0
        }
        assert compacted, "forced-low ratio never compacted a lane"
        for entry in compacted.values():
            assert entry["tombstone_ratio"] <= 0.05


class TestMetricsText:
    def test_exposition_contains_view_and_engine_series(self, view):
        view.slow_query_ms = float("inf")
        view.query(QUERY)
        text = view.metrics_text()
        assert "# TYPE repro_query_seconds histogram" in text
        assert '# TYPE repro_queries_total counter' in text
        assert 'repro_queries_total{mode="U"}' in text
        assert "repro_view_facts " in text
        assert "repro_view_consistent 1" in text
        assert "repro_snapshot_readers_pinned 0" in text
        assert "repro_term_table_constants " in text
        assert 'repro_predicate_live_rows{predicate="triple"}' in text
        assert "repro_engine_triggers_fired_total " in text

    def test_write_metrics_accumulate(self, view):
        text_before = view.metrics_text()
        view.push([("extra", "rdf:type", "Student")])
        text = view.metrics_text()
        assert 'repro_writes_total{op="push"}' in text
        assert 'repro_write_seconds_count{op="push"}' in text
        assert text_before != text


class TestMetricsEndpoint:
    @pytest.fixture(scope="class")
    def client(self):
        service_client = ServiceClient(
            university_graph(n_departments=1, students_per_department=3)
        )
        yield service_client
        service_client.close()

    def test_metrics_served_as_prometheus_text(self, client):
        client.query(QUERY)
        with urllib.request.urlopen(client.base + "/metrics", timeout=60) as response:
            content_type = response.headers.get("Content-Type", "")
            body = response.read().decode()
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_query_seconds histogram" in body
        assert 'repro_queries_total{mode="U"}' in body
        for line in body.splitlines():
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_metrics_rejects_post(self, client):
        request = urllib.request.Request(
            client.base + "/metrics", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 405

    def test_http_queries_count_into_stats_and_metrics(self, client):
        before = client.get("/stats")["queries_served"]
        client.query(QUERY)
        client.query(QUERY)
        after = client.get("/stats")
        assert after["queries_served"] == before + 2
        assert "repro_queries_total" in after["metrics"]
