"""Plan profiling and EXPLAIN tests (repro.obs.profile + CompiledRule.explain).

Profiles accumulate per-step candidate/probe/survivor counts on the plans
both executors run; EXPLAIN renders the compiled step order always and the
counters once a profiled execution happened.  Byte-parity of results with
profiling on lives in ``tests/test_obs_neutrality.py``.
"""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.terms import Constant
from repro.engine.mode import execution_mode
from repro.engine.plan import compile_rule
from repro.obs.profile import PROFILER, PlanProfile

C = Constant

PROGRAM = """
    e(?X, ?Y) -> p(?X, ?Y).
    p(?X, ?Y), e(?Y, ?Z) -> p(?X, ?Z).
    p(?X, ?Y), not e(?X, ?Y) -> far(?X, ?Y).
"""


def chain(n=6):
    return [Atom("e", (C(f"n{i}"), C(f"n{i + 1}"))) for i in range(n)]


@pytest.fixture(autouse=True)
def profiler_off_after():
    yield
    PROFILER.disable()
    PROFILER.reset()


def run(mode):
    with execution_mode(mode):
        return SemiNaiveEvaluator(parse_program(PROGRAM)).evaluate(chain())


class TestProfiler:
    def test_disabled_by_default_and_attaches_nothing(self):
        assert PROFILER.enabled is False
        PROFILER.reset()
        run("batch")
        assert PROFILER.snapshot() == []

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_profiles_accumulate_per_step_counters(self, mode):
        PROFILER.enable()
        PROFILER.reset()
        result = run(mode)
        plans = PROFILER.snapshot()
        assert plans, "profiled run must register executed plans"
        assert any(atom.predicate == "p" for atom in result)
        transitive = next(
            p for p in plans if "p(?X, ?Y) AND e(?Y, ?Z)" in p["label"]
        )
        assert transitive["executions"] > 0
        assert len(transitive["steps"]) == 2
        first, second = transitive["steps"]
        assert first["rows_in"] > 0
        assert second["probes"] > 0
        # Survivors of the last step are the plan's emitted rows.
        assert transitive["rows_out"] <= first["rows_out"] * max(
            1, second["rows_out"]
        )

    def test_negation_counters_accumulate_in_batch_mode(self):
        PROFILER.enable()
        PROFILER.reset()
        run("batch")
        negated = [
            p for p in PROFILER.snapshot() if p["negation"]["rows_in"] > 0
        ]
        assert negated, "the negation pre-filter must report its input rows"
        assert all(
            p["negation"]["blocked"] <= p["negation"]["rows_in"]
            for p in negated
        )

    def test_reset_zeroes_in_place(self):
        PROFILER.enable()
        PROFILER.reset()
        run("batch")
        assert PROFILER.snapshot()
        PROFILER.reset()
        assert PROFILER.snapshot() == []
        # Plans re-accumulate on the next run through the same cached plans.
        run("batch")
        assert PROFILER.snapshot()

    def test_snapshot_orders_hottest_first_and_caps(self):
        PROFILER.enable()
        PROFILER.reset()
        run("batch")
        plans = PROFILER.snapshot()
        times = [p["time_us"] for p in plans]
        assert times == sorted(times, reverse=True)
        assert len(PROFILER.snapshot(top=1)) == 1

    def test_plan_profile_registered_once_per_plan(self):
        class FakePlan:
            def __init__(self):
                self.profile = None
                self.atoms = ()
                self.steps = ()

        plan = FakePlan()
        first = PROFILER.plan_profile(plan, label="fake")
        second = PROFILER.plan_profile(plan)
        assert first is second
        assert isinstance(first, PlanProfile)
        assert first.label == "fake"


class TestExplain:
    def test_explain_renders_steps_without_profiling(self):
        rule = parse_program("p(?X, ?Y), e(?Y, ?Z) -> q(?X, ?Z).").rules[0]
        text = compile_rule(rule).explain()
        assert text.startswith("rule: ")
        assert "plan:" in text
        assert "step 0:" in text
        assert "profile:" not in text

    def test_explain_includes_profile_after_profiled_run(self):
        PROFILER.enable()
        PROFILER.reset()
        with execution_mode("batch"):
            evaluator = SemiNaiveEvaluator(parse_program(PROGRAM))
            evaluator.evaluate(chain())
        texts = [
            crule.explain()
            for stratum in evaluator.compiled_strata
            for crule in stratum
        ]
        profiled = [text for text in texts if "profile: executions=" in text]
        assert profiled, "EXPLAIN must surface accumulated counters"
        assert any("rows_in=" in text for text in profiled)

    def test_explain_renders_negation_atoms(self):
        rule = parse_program(
            "p(?X, ?Y), not e(?X, ?Y) -> far(?X, ?Y)."
        ).rules[0]
        assert "negation: not e(?X, ?Y)" in compile_rule(rule).explain()
