"""Unit tests for instances and databases."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database, Instance
from repro.datalog.terms import Constant, Null, Variable

a, b, c = Constant("a"), Constant("b"), Constant("c")
z = Null("_:z")


class TestInstance:
    def test_add_and_contains(self):
        instance = Instance()
        assert instance.add(Atom("p", (a, b)))
        assert not instance.add(Atom("p", (a, b)))  # duplicate
        assert Atom("p", (a, b)) in instance
        assert len(instance) == 1

    def test_rejects_atoms_with_variables(self):
        with pytest.raises(ValueError):
            Instance().add(Atom("p", (Variable("X"),)))

    def test_accepts_nulls(self):
        instance = Instance([Atom("p", (a, z))])
        assert instance.nulls() == {z}

    def test_discard(self):
        instance = Instance([Atom("p", (a,))])
        assert instance.discard(Atom("p", (a,)))
        assert not instance.discard(Atom("p", (a,)))
        assert len(instance) == 0
        assert list(instance.matching(Atom("p", (Variable("X"),)))) == []

    def test_with_predicate(self):
        instance = Instance([Atom("p", (a,)), Atom("q", (b,))])
        assert instance.with_predicate("p") == {Atom("p", (a,))}

    def test_matching_uses_constants(self):
        instance = Instance([Atom("p", (a, b)), Atom("p", (a, c)), Atom("p", (b, c))])
        matches = list(instance.matching(Atom("p", (a, Variable("X")))))
        assert set(matches) == {Atom("p", (a, b)), Atom("p", (a, c))}

    def test_matching_no_candidates(self):
        instance = Instance([Atom("p", (a, b))])
        assert list(instance.matching(Atom("p", (c, Variable("X"))))) == []

    def test_domain_and_constants(self):
        instance = Instance([Atom("p", (a, z))])
        assert instance.domain() == {a, z}
        assert instance.constants() == {a}

    def test_ground_part(self):
        instance = Instance([Atom("p", (a,)), Atom("p", (z,))])
        assert instance.ground_part().to_set() == {Atom("p", (a,))}

    def test_copy_is_independent(self):
        instance = Instance([Atom("p", (a,))])
        copy = instance.copy()
        copy.add(Atom("p", (b,)))
        assert len(instance) == 1 and len(copy) == 2

    def test_equality_with_sets(self):
        instance = Instance([Atom("p", (a,))])
        assert instance == {Atom("p", (a,))}

    def test_sorted_atoms_deterministic(self):
        instance = Instance([Atom("q", (b,)), Atom("p", (a,))])
        assert [atom.predicate for atom in instance.sorted_atoms()] == ["p", "q"]

    def test_arity_of(self):
        instance = Instance([Atom("p", (a, b))])
        assert instance.arity_of("p") == 2
        assert instance.arity_of("missing") is None


class TestDatabase:
    def test_rejects_nulls(self):
        with pytest.raises(ValueError):
            Database().add(Atom("p", (z,)))

    def test_copy_preserves_type(self):
        database = Database([Atom("p", (a,))])
        assert isinstance(database.copy(), Database)

    def test_predicates(self):
        database = Database([Atom("p", (a,)), Atom("q", (a, b))])
        assert database.predicates == {"p", "q"}
