"""Tests for alternating Turing machines and the Theorem 6.15 reduction."""

import pytest

from repro.analysis.guards import classify_program
from repro.reductions.atm import (
    ACCEPT_STATE,
    REJECT_STATE,
    AlternatingTuringMachine,
    Transition,
    atm_accepts_directly,
    atm_accepts_via_datalog,
    atm_database,
    atm_program,
)


def exist_machine(first_ok=True, second_ok=False):
    """delta(s0, 1) = ((s_accept|s_reject), ..., R), ((s_accept|s_reject), ..., R)."""
    return AlternatingTuringMachine(
        existential_states=frozenset({"s0"}),
        universal_states=frozenset(),
        transitions=(
            Transition(
                "s0",
                "1",
                (ACCEPT_STATE if first_ok else REJECT_STATE, "1", +1),
                (ACCEPT_STATE if second_ok else REJECT_STATE, "1", +1),
            ),
        ),
        initial_state="s0",
    )


def forall_machine(first_ok=True, second_ok=True):
    return AlternatingTuringMachine(
        existential_states=frozenset(),
        universal_states=frozenset({"s0"}),
        transitions=(
            Transition(
                "s0",
                "1",
                (ACCEPT_STATE if first_ok else REJECT_STATE, "1", +1),
                (ACCEPT_STATE if second_ok else REJECT_STATE, "1", +1),
            ),
        ),
        initial_state="s0",
    )


def two_step_machine():
    """Existential then universal step: accepts iff the first cell is 1 and the second is 1."""
    return AlternatingTuringMachine(
        existential_states=frozenset({"s0"}),
        universal_states=frozenset({"s1"}),
        transitions=(
            Transition("s0", "1", ("s1", "1", +1), ("s1", "1", +1)),
            Transition("s1", "1", (ACCEPT_STATE, "1", -1), (ACCEPT_STATE, "1", -1)),
            Transition("s1", "0", (REJECT_STATE, "0", -1), (REJECT_STATE, "0", -1)),
        ),
        initial_state="s0",
    )


class TestDirectSemantics:
    def test_existential_accepts_if_some_branch_accepts(self):
        assert atm_accepts_directly(exist_machine(True, False), ["1", "1"])
        assert atm_accepts_directly(exist_machine(False, True), ["1", "1"])
        assert not atm_accepts_directly(exist_machine(False, False), ["1", "1"])

    def test_universal_needs_both_branches(self):
        assert atm_accepts_directly(forall_machine(True, True), ["1", "1"])
        assert not atm_accepts_directly(forall_machine(True, False), ["1", "1"])

    def test_two_step_machine_reads_tape(self):
        machine = two_step_machine()
        assert atm_accepts_directly(machine, ["1", "1"])
        assert not atm_accepts_directly(machine, ["1", "0"])
        assert not atm_accepts_directly(machine, ["0", "1"])


class TestReduction:
    def test_program_is_fixed_minimal_interaction_but_not_warded(self):
        report = classify_program(atm_program())
        assert report.warded_minimal_interaction
        assert not report.warded
        assert report.is_triq  # it is weakly-frontier-guarded

    def test_database_encodes_machine_and_input(self):
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant

        database = atm_database(exist_machine(), ["1", "0"])
        predicates = {atom.predicate for atom in database}
        assert {"config", "state", "cursor", "symbol", "next_cell", "neq", "transition"} <= predicates
        assert Atom("exists_state", (Constant("s0"),)) in database

    def test_empty_tape_rejected(self):
        with pytest.raises(ValueError):
            atm_database(exist_machine(), [])

    @pytest.mark.parametrize(
        "machine,tape",
        [
            (exist_machine(True, False), ["1", "1"]),
            (exist_machine(False, False), ["1", "1"]),
            (forall_machine(True, True), ["1", "1"]),
            (forall_machine(True, False), ["1", "1"]),
        ],
    )
    def test_reduction_faithful_on_single_step_machines(self, machine, tape):
        assert atm_accepts_via_datalog(machine, tape, depth=3) == atm_accepts_directly(
            machine, tape
        )

    def test_reduction_faithful_on_two_step_machine(self):
        machine = two_step_machine()
        assert atm_accepts_via_datalog(machine, ["1", "1"], depth=4) is True
        assert atm_accepts_via_datalog(machine, ["1", "0"], depth=4) is False
