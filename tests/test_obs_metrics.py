"""Unit tests for the metrics registry and Prometheus text exposition.

Counter/gauge/histogram semantics, label children, idempotent registration,
deterministic rendering (instrument and label ordering, histogram bucket
lines), and the JSON ``collect()`` view folded into ``/stats``.  Thread
safety of the increment paths is exercised by the hammer test in
``tests/test_service_metrics.py``.
"""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_default_child(self, registry):
        counter = registry.counter("jobs_total", "Jobs.")
        counter.inc()
        counter.inc(4)
        assert counter.labels().value == 5

    def test_negative_inc_rejected(self, registry):
        counter = registry.counter("jobs_total", "Jobs.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_total_mirrors_external_value(self, registry):
        counter = registry.counter("mirror_total", "Mirrored.")
        counter.set_total(42)
        assert counter.labels().value == 42

    def test_labeled_children_are_independent(self, registry):
        counter = registry.counter("queries_total", "Queries.", ("mode",))
        counter.labels("U").inc()
        counter.labels("U").inc()
        counter.labels("All").inc()
        assert counter.labels("U").value == 2
        assert counter.labels("All").value == 1

    def test_label_arity_mismatch_raises(self, registry):
        counter = registry.counter("queries_total", "Queries.", ("mode",))
        with pytest.raises(ValueError):
            counter.labels("U", "extra")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("readers", "Readers.")
        gauge.set(3)
        child = gauge.labels()
        child.inc(2)
        child.dec()
        assert child.value == 4


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self, registry):
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.01, 0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        child = histogram.labels()
        assert child.counts == [0, 1, 2]
        assert child.count == 3
        assert child.total == pytest.approx(5.55)

    def test_bucket_determinism(self, registry):
        # The same observation sequence lands in identical buckets on every
        # run: bucket bounds are fixed at creation and sorted.
        observations = [0.0004, 0.003, 0.003, 0.09, 2.0]
        snapshots = []
        for name in ("first", "second"):
            histogram = registry.histogram(f"h_{name}", "H.")
            for value in observations:
                histogram.observe(value)
            snapshots.append(histogram.labels().snapshot())
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["count"] == len(observations)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("x_total", "X.")
        second = registry.counter("x_total", "different help ignored")
        assert first is second

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x_total", "X.")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "X.")

    def test_label_mismatch_raises(self, registry):
        registry.counter("x_total", "X.", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "X.", ("b",))

    def test_reset_zeroes_but_keeps_instruments_usable(self, registry):
        counter = registry.counter("x_total", "X.")
        counter.inc()
        registry.reset()
        assert "x_total" not in registry.render()
        counter.inc()
        assert counter.labels().value == 1
        assert "x_total 1" in registry.render()


class TestRender:
    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""
        registry.counter("unused_total", "Never incremented.")
        assert registry.render() == ""

    def test_counter_and_gauge_lines(self, registry):
        registry.counter("b_total", "B.").inc(2)
        registry.gauge("a_value", "A.").set(1.5)
        text = registry.render()
        assert text.endswith("\n")
        assert "# HELP a_value A.\n# TYPE a_value gauge\na_value 1.5\n" in text
        assert "# HELP b_total B.\n# TYPE b_total counter\nb_total 2\n" in text
        # Deterministic ordering: instruments sorted by name.
        assert text.index("a_value") < text.index("b_total")

    def test_labeled_samples_sorted_and_escaped(self, registry):
        counter = registry.counter("q_total", "Q.", ("mode",))
        counter.labels("b").inc()
        counter.labels('a"\n\\').inc()
        text = registry.render()
        escaped = 'q_total{mode="a\\"\\n\\\\"} 1'
        assert escaped in text
        assert text.index(escaped) < text.index('q_total{mode="b"} 1')

    def test_histogram_exposition_shape(self, registry):
        histogram = registry.histogram(
            "lat_seconds", "Latency.", ("mode",), buckets=(0.1, 1.0)
        )
        histogram.labels("U").observe(0.05)
        histogram.labels("U").observe(0.5)
        text = registry.render()
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{mode="U",le="0.1"} 1' in text
        assert 'lat_seconds_bucket{mode="U",le="1"} 2' in text
        assert 'lat_seconds_bucket{mode="U",le="+Inf"} 2' in text
        assert 'lat_seconds_sum{mode="U"} 0.55' in text
        assert 'lat_seconds_count{mode="U"} 2' in text

    def test_unlabeled_histogram_bucket_lines(self, registry):
        histogram = registry.histogram("h_seconds", "H.", buckets=(1.0,))
        histogram.observe(0.5)
        text = registry.render()
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.5" in text

    def test_integer_values_render_integral(self, registry):
        registry.gauge("g_value", "G.").set(3.0)
        assert "g_value 3\n" in registry.render()


class TestCollect:
    def test_collect_shape(self, registry):
        registry.counter("c_total", "C.", ("k",)).labels("v").inc(2)
        registry.histogram("h_seconds", "H.", buckets=(1.0,)).observe(0.5)
        document = registry.collect()
        assert document["c_total"]["type"] == "counter"
        assert document["c_total"]["values"] == {'{k="v"}': 2}
        histogram = document["h_seconds"]["values"][""]
        assert histogram["count"] == 1
        assert histogram["buckets"] == {"1": 1}

    def test_collect_is_json_able(self, registry):
        import json

        registry.counter("c_total", "C.").inc()
        json.dumps(registry.collect())
