"""Retraction parity: DRed deletion vs a cold recompute, byte for byte.

:meth:`~repro.engine.incremental.DeltaSession.retract` promises that after
any interleaving of pushes and retractions, the materialisation equals one
cold evaluation of the *surviving* EDB — the same differential contract
``tests/test_engine_incremental_parity.py`` pins for pushes, extended to
deletion.  The suite covers:

* **Fuzzed interleavings**: random stratified Datalog¬ programs under random
  push/retract schedules (retractions sample the currently-live EDB), in all
  three execution modes, compared ``sorted_atoms()``-equal to the cold run.
  Mode parity also compares the gated counters, so row, batch, and the
  forced 2-worker parallel executor take byte-identical work accounting
  through the deletion path.
* **Negation**: a retraction that shrinks a negation reference re-runs the
  strata above it — facts whose negative support *returns* must reappear.
* **Chase sessions**: content-addressed nulls make deletion parity
  byte-exact too — labels agree with the cold run, and the null garbage
  collector drops exactly the invented nulls no surviving fact references.
* **The canary**: with the re-derivation phase surgically disabled, the
  differential oracle must *fail* — proving the oracle can actually catch a
  skipped restoration, so green runs above mean something.
"""

import random

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant
from repro.engine.incremental import DeltaSession, cold_equivalent
from repro.engine.interning import TERMS
from repro.engine.parallel import shutdown_pool
from test_engine_batch_parity import random_datalog_program, random_instance
from test_engine_incremental_parity import (
    ANCESTOR_CHASE_PROGRAM,
    TC_NEGATION_PROGRAM,
    TC_PROGRAM,
    edge,
    person,
    run_three_modes,
)


@pytest.fixture(scope="module", autouse=True)
def stop_pool_after_module():
    yield
    shutdown_pool()


def interleaved_schedule(rng, facts, n_ops):
    """A random ``(op, batch)`` schedule: pushes deliver fresh facts,
    retractions sample the EDB that is live at that point of the schedule."""
    pending = list(facts)
    rng.shuffle(pending)
    live = []
    ops = []
    for _ in range(n_ops):
        if pending and (not live or rng.random() < 0.6):
            batch = [pending.pop() for _ in range(min(len(pending), rng.randint(1, 8)))]
            live.extend(batch)
            ops.append(("push", batch))
        elif live:
            batch = rng.sample(live, rng.randint(1, min(len(live), 5)))
            for fact in batch:
                live.remove(fact)
            ops.append(("retract", batch))
    if pending:  # deliver the tail so schedules differ only in interleaving
        live.extend(pending)
        ops.append(("push", list(pending)))
    return ops


def replay(program, ops, **kwargs):
    """Build a session, apply the schedule, return it (caller closes)."""
    session = DeltaSession(program, [], **kwargs)
    for op, batch in ops:
        getattr(session, op)(batch)
    return session


def assert_cold_parity(session):
    cold = cold_equivalent(session)
    assert session.instance.sorted_atoms() == cold.sorted_atoms()


class TestInterleavedParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_fuzzed_stratified_programs(self, seed):
        rng = random.Random(4000 + seed)
        instance, constants = random_instance(rng, n_constants=5, n_facts=60)
        program = random_datalog_program(rng, constants)
        ops = interleaved_schedule(rng, instance, rng.randint(4, 9))
        assert any(op == "retract" for op, _ in ops)
        session = replay(program, ops)
        assert_cold_parity(session)
        session.close()

    def test_retract_then_reinsert_roundtrips(self):
        edges = [edge(f"n{i}", f"n{i + 1}") for i in range(10)]
        session = DeltaSession(TC_PROGRAM, edges)
        before = session.instance.sorted_atoms()
        session.retract(edges[3:6])
        assert_cold_parity(session)
        session.push(edges[3:6])
        assert session.instance.sorted_atoms() == before
        session.close()

    def test_retract_everything_empties_the_materialisation(self):
        edges = [edge(f"n{i}", f"n{i + 1}") for i in range(6)]
        session = DeltaSession(TC_PROGRAM, edges)
        result = session.retract(edges)
        assert result.removed_edb == len(edges)
        assert len(session) == 0
        assert_cold_parity(session)
        session.close()

    def test_retract_of_absent_facts_is_a_noop(self):
        session = DeltaSession(TC_PROGRAM, [edge("a", "b")])
        size = len(session)
        result = session.retract([edge("x", "y")])
        assert result.removed_edb == 0 and result.overdeleted == 0
        assert len(session) == size
        session.close()

    def test_shared_support_survives_partial_retraction(self):
        # connected(a, c) holds through b *and* through the direct edge; the
        # chain's deletion must not take the surviving derivation with it.
        session = DeltaSession(
            TC_PROGRAM, [edge("a", "b"), edge("b", "c"), edge("a", "c")]
        )
        result = session.retract([edge("b", "c")])
        assert result.rederived >= 1
        assert (Constant("a"), Constant("c")) in session.query("connected")
        assert_cold_parity(session)
        session.close()


class TestNegation:
    def test_retraction_restores_negatively_supported_facts(self):
        session = DeltaSession(
            TC_NEGATION_PROGRAM, [edge("a", "b"), edge("b", "a")]
        )
        assert session.query("oneway") == frozenset()
        result = session.retract([edge("b", "a")])
        # The negation reference shrank: the stratum above re-runs, and the
        # fact it used to block comes back.
        assert result.rebuilt_from is not None
        assert session.query("oneway") == {(Constant("a"), Constant("b"))}
        assert_cold_parity(session)
        session.close()

    @pytest.mark.parametrize("seed", range(4))
    def test_negation_fuzz_over_interleavings(self, seed):
        rng = random.Random(5000 + seed)
        instance, constants = random_instance(rng, n_constants=4, n_facts=50)
        program = random_datalog_program(rng, constants)
        for _ in range(2):
            ops = interleaved_schedule(rng, instance, rng.randint(5, 8))
            session = replay(program, ops)
            assert_cold_parity(session)
            session.close()


class TestChaseRetraction:
    def test_null_gc_drops_exactly_the_orphans(self):
        people = [person(f"p{i}") for i in range(4)]
        session = DeltaSession(ANCESTOR_CHASE_PROGRAM, people)
        orphaned_before = TERMS.orphaned_nulls
        nulls_before = len(session.instance.nulls())
        result = session.retract([person("p0")])
        assert result.nulls_collected == 1
        assert len(session.instance.nulls()) == nulls_before - 1
        assert TERMS.orphaned_nulls == orphaned_before + 1
        assert_cold_parity(session)
        session.close()

    def test_reinsertion_reinvents_the_same_null_labels(self):
        # Content-addressed digests: retracting a person and pushing it back
        # re-fires the same trigger and lands on the same label, so the
        # instance round-trips byte-identically.
        people = [person(f"p{i}") for i in range(5)]
        session = DeltaSession(ANCESTOR_CHASE_PROGRAM, people)
        before = session.instance.sorted_atoms()
        session.retract([person("p2")])
        session.push([person("p2")])
        assert session.instance.sorted_atoms() == before
        session.close()

    def test_interleaved_chase_schedule_matches_cold(self):
        people = [person(f"p{i}") for i in range(8)]
        session = DeltaSession(ANCESTOR_CHASE_PROGRAM, people[:5])
        session.retract(people[1:3])
        session.push(people[5:])
        session.retract([people[6]])
        assert_cold_parity(session)
        session.close()


class TestModeParity:
    def test_three_mode_interleaved_parity(self):
        rng = random.Random(77)
        edges = [
            edge(f"u{rng.randrange(12)}", f"u{rng.randrange(12)}")
            for _ in range(40)
        ]
        ops = interleaved_schedule(random.Random(78), edges, 8)
        assert any(op == "retract" for op, _ in ops)

        def stream():
            session = replay(TC_NEGATION_PROGRAM, ops)
            atoms = list(session.instance)
            session.close()
            return atoms

        outcome = run_three_modes(stream)
        assert outcome["row"][0] == outcome["batch"][0] == outcome["parallel"][0]
        # Gated counters too: the deletion path (over-delete, re-derive,
        # null GC) does identical accounted work in every executor.
        assert outcome["row"][1] == outcome["batch"][1] == outcome["parallel"][1]

    def test_three_mode_chase_retraction_parity(self):
        people = [person(f"p{i}") for i in range(9)]

        def stream():
            session = DeltaSession(ANCESTOR_CHASE_PROGRAM, people[:6])
            session.retract(people[2:4])
            session.push(people[6:])
            session.retract([people[0]])
            atoms = list(session.instance)
            session.close()
            return atoms

        outcome = run_three_modes(stream)
        assert outcome["row"][0] == outcome["batch"][0] == outcome["parallel"][0]
        assert outcome["row"][1] == outcome["batch"][1] == outcome["parallel"][1]


class TestPackedColumnTombstones:
    """Retraction must be visible through the flat column buffers.

    The packed representation never deletes rows — :meth:`ColumnBuffer.kill`
    flips the arity lane to the tombstone marker and leaves the position
    lanes intact — so every consumer of the buffers (scans, probe
    verification, the numpy and pure-Python kernels) has to treat
    ``arities[row] != arity`` as the single liveness test.  This regression
    pins that contract against :meth:`DeltaSession.retract`.  A single-rule
    program keeps the over-deleted closure small, so retraction takes the
    in-place DRed path (tombstones) rather than the degenerate instance
    rebuild — the path under test.
    """

    SINGLE_RULE = "triple(?X, knows, ?Y) -> knows(?X, ?Y)."

    def test_retract_flips_arity_lane_only(self):
        from repro.engine.colbuf import TOMB

        edges = [edge(f"n{i}", f"n{i + 1}") for i in range(8)]
        session = DeltaSession(self.SINGLE_RULE, edges)
        index = session.instance._index
        cols = index.cols["triple"]
        n_rows = len(cols)
        victims = edges[2:5]
        victim_keys = {TERMS.atom_key(a)[1:] for a in victims}
        session.retract(victims)
        # The in-place path keeps the instance (and its buffers) identical.
        assert session.instance._index is index
        # Rows are never compacted: the buffer keeps its length and the
        # killed rows keep their term IDs under a tombstoned arity lane.
        assert len(cols) == n_rows
        dead = [r for r in range(n_rows) if cols.arities[r] == TOMB]
        assert len(dead) == len(victims)
        assert {tuple(cols.values_at(r, 3)) for r in dead} == victim_keys
        assert_cold_parity(session)
        session.close()

    def test_scans_and_kernels_skip_tombstones_in_both_modes(self):
        from repro.engine import kernels

        edges = [edge(f"n{i}", f"n{i + 1}") for i in range(60)]
        session = DeltaSession(self.SINGLE_RULE, edges)
        index = session.instance._index
        session.retract(edges[10:30])
        assert session.instance._index is index  # in-place, not rebuilt
        survivors = {TERMS.atom_key(a)[1:] for a in edges[:10] + edges[30:]}
        modes = [False] + ([True] if kernels.numpy_available() else [])
        results = []
        for flag in modes:
            kernels.set_numpy_enabled(flag)
            try:
                scanned = set(index.scan_ids("triple", 3, ()))
                assert scanned == survivors
                # The bulk-extension kernel over every row id must surface
                # exactly the live rows regardless of dispatch mode.
                cols = index.cols["triple"]
                ext = kernels.extensions(
                    cols, range(len(cols)), 3, (0, 1, 2), ()
                )
                results.append(ext)
                values = index.distinct_values("triple", 0)
                if values is not None:
                    assert values == {ids[0] for ids in survivors}
            finally:
                kernels.set_numpy_enabled(True)
        assert len({tuple(map(tuple, r)) for r in results}) == 1
        assert {tuple(row) for row in results[0]} == survivors
        assert_cold_parity(session)
        session.close()

    def test_interleaved_retract_parity_survives_packed_reuse(self):
        # Push/retract churn over the same spellings: re-added facts land in
        # fresh rows (append-only ordinals) while old tombstones linger, and
        # the differential oracle must still hold byte for byte.
        edges = [edge(f"n{i}", f"n{i + 1}") for i in range(12)]
        session = DeltaSession(self.SINGLE_RULE, edges)
        for _ in range(3):
            session.retract(edges[3:9])
            assert_cold_parity(session)
            session.push(edges[3:9])
            assert_cold_parity(session)
        index = session.instance._index
        cols = index.cols["triple"]
        assert len(cols) > len(edges)  # tombstoned rows were never reclaimed
        assert sum(1 for r in range(len(cols)) if cols.arities[r] == 3) == len(
            edges
        )
        session.close()


class TestTombstoneCompaction:
    """Compaction is invisible: same atoms, same gated counters, fewer rows.

    :meth:`PredicateIndex.compact` rewrites a lane's physical rows (live rows
    only, original order, fresh row ids) when the tombstone fraction crosses
    ``compact_ratio`` at the end of a retraction.  The churn below retracts
    and re-pushes chain segments in small bites so tombstones accumulate
    without ever tripping the degenerate-rebuild guard; the forced-low leg
    must then be byte-identical — atoms *and* gated counters — to the
    disabled leg (ratio 2.0 can never trip), while holding strictly fewer
    physical rows and a tombstone fraction bounded by the knob.
    """

    RATIO = 0.3

    @staticmethod
    def _churn():
        edges = [edge(f"k{i}", f"k{i + 1}") for i in range(60)]
        session = DeltaSession(TC_PROGRAM, edges)
        for k in range(56, 30, -2):
            session.retract(edges[k : k + 2])
            session.push(edges[k : k + 2])
        return session

    def _run(self, ratio):
        from repro.engine.index import compact_ratio, set_compact_ratio
        from repro.engine.stats import STATS

        previous = compact_ratio()
        set_compact_ratio(ratio)
        try:
            STATS.reset()
            session = self._churn()
            atoms = session.instance.sorted_atoms()
            gated = STATS.gated()
            counts = dict(session.compaction_counts)
            index = session.instance._index
            lanes = {
                predicate: (index.row_count(predicate), index.live.get(predicate, 0))
                for predicate in index.rows
            }
            assert_cold_parity(session)
            session.close()
            return atoms, gated, counts, lanes
        finally:
            set_compact_ratio(previous)

    def test_byte_parity_with_compaction_disabled(self):
        atoms_on, gated_on, counts_on, lanes_on = self._run(self.RATIO)
        atoms_off, gated_off, counts_off, lanes_off = self._run(2.0)
        assert sum(counts_on.values()) >= 1  # the forced leg really compacted
        assert not counts_off
        assert atoms_on == atoms_off
        assert gated_on == gated_off
        for predicate in counts_on:
            total_on, live_on = lanes_on[predicate]
            total_off, live_off = lanes_off[predicate]
            # Same live facts through strictly fewer physical rows, and the
            # dead remainder bounded by the knob: pushes after the last
            # compacting retraction only ever add live rows, so the fraction
            # the final retraction left behind can only have shrunk.
            assert live_on == live_off
            assert total_on < total_off
            assert (total_on - live_on) / total_on <= self.RATIO

    def test_three_mode_parity_under_forced_compaction(self):
        from repro.engine.index import compact_ratio, set_compact_ratio

        previous = compact_ratio()
        set_compact_ratio(self.RATIO)
        try:

            def stream():
                session = self._churn()
                atoms = list(session.instance)
                assert sum(session.compaction_counts.values()) >= 1
                session.close()
                return atoms

            outcome = run_three_modes(stream)
            assert outcome["row"][0] == outcome["batch"][0] == outcome["parallel"][0]
            # The gated counters too: compaction renumbers rows mid-session
            # (forcing a parallel re-arm), which must not change the work any
            # executor accounts for.
            assert outcome["row"][1] == outcome["batch"][1] == outcome["parallel"][1]
        finally:
            set_compact_ratio(previous)


class TestCanary:
    def test_oracle_catches_a_skipped_rederivation(self, monkeypatch):
        # Plant the bug DRed exists to prevent — delete the over-deleted
        # closure but never restore survivors — and require the differential
        # oracle to *fail*.  If this test ever passes with the restoration
        # disabled, the parity assertions above have lost their teeth.
        session = DeltaSession(
            TC_PROGRAM, [edge("a", "b"), edge("b", "c"), edge("a", "c")]
        )
        monkeypatch.setattr(
            DeltaSession, "_rederive_stratum", lambda self, stratum, marked: 0
        )
        session.retract([edge("b", "c")])
        cold = cold_equivalent(session)
        assert session.instance.sorted_atoms() != cold.sorted_atoms()
        # connected(a, c) still has the direct edge as support; the crippled
        # session lost it, which is exactly what the oracle must notice.
        assert (Constant("a"), Constant("c")) not in session.query("connected")
        session.close()
