"""Randomised integration test for Theorem 5.2.

For random RDF graphs and random graph patterns (built from AND / UNION /
OPT / FILTER over random BGPs), the SPARQL evaluator and the Datalog
translation must produce exactly the same set of mappings.
"""

import pytest

from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.sparql.evaluator import evaluate_pattern
from repro.translation.answers import decode_answers
from repro.translation.sparql_to_datalog import translate_pattern
from repro.workloads.graphs import random_rdf_graph
from repro.workloads.queries import random_bgp, random_pattern


def datalog_mappings(pattern, graph):
    translation = translate_pattern(pattern)
    evaluator = SemiNaiveEvaluator(translation.program)
    instance = evaluator.evaluate(graph.to_database())
    tuples = {
        tuple(atom.terms)
        for atom in instance.with_predicate(translation.answer_predicate)
        if atom.is_ground
    }
    return decode_answers(tuples, translation.answer_variables)


class TestTheorem52Randomised:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_bgps(self, seed):
        graph = random_rdf_graph(25, n_nodes=8, seed=seed)
        pattern = random_bgp(graph, n_triples=2, n_variables=3, seed=seed)
        assert datalog_mappings(pattern, graph) == evaluate_pattern(pattern, graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_composite_patterns(self, seed):
        graph = random_rdf_graph(20, n_nodes=7, seed=seed + 100)
        pattern = random_pattern(graph, depth=2, seed=seed)
        assert datalog_mappings(pattern, graph) == evaluate_pattern(pattern, graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_deeper_patterns(self, seed):
        graph = random_rdf_graph(15, n_nodes=6, seed=seed + 200)
        pattern = random_pattern(graph, depth=3, seed=seed + 50)
        assert datalog_mappings(pattern, graph) == evaluate_pattern(pattern, graph)
