"""Unit tests for atoms, positions and fact unification."""

import pytest

from repro.datalog.atoms import Atom, Position, unify_with_fact
from repro.datalog.terms import Constant, Null, Variable


class TestPosition:
    def test_one_based(self):
        with pytest.raises(ValueError):
            Position("p", 0)

    def test_equality_and_str(self):
        assert Position("p", 1) == Position("p", 1)
        assert str(Position("triple", 3)) == "triple[3]"

    def test_ordering(self):
        assert Position("p", 1) < Position("p", 2) < Position("q", 1)


class TestAtom:
    def test_of_constructor(self):
        atom = Atom.of("p", Constant("a"), Variable("X"))
        assert atom.predicate == "p" and atom.arity == 2

    def test_variables_constants_nulls(self):
        atom = Atom("p", (Constant("a"), Variable("X"), Null("_:b")))
        assert atom.variables == {Variable("X")}
        assert atom.constants == {Constant("a")}
        assert atom.nulls == {Null("_:b")}
        assert atom.domain == {Constant("a"), Variable("X"), Null("_:b")}

    def test_groundness(self):
        assert Atom("p", (Constant("a"),)).is_ground
        assert not Atom("p", (Null("_:b"),)).is_ground
        assert Atom("p", (Null("_:b"),)).is_fact
        assert not Atom("p", (Variable("X"),)).is_fact

    def test_positions(self):
        atom = Atom("p", (Constant("a"), Constant("b")))
        assert atom.positions() == (Position("p", 1), Position("p", 2))

    def test_positions_of_term(self):
        atom = Atom("p", (Variable("X"), Constant("a"), Variable("X")))
        assert atom.positions_of(Variable("X")) == (Position("p", 1), Position("p", 3))

    def test_apply_substitution(self):
        atom = Atom("p", (Variable("X"), Constant("a")))
        assert atom.apply({Variable("X"): Constant("c")}) == Atom(
            "p", (Constant("c"), Constant("a"))
        )

    def test_apply_leaves_unmapped_terms(self):
        atom = Atom("p", (Variable("X"), Variable("Y")))
        result = atom.apply({Variable("X"): Constant("c")})
        assert result.terms == (Constant("c"), Variable("Y"))

    def test_rename_variables_only(self):
        atom = Atom("p", (Variable("X"), Constant("a")))
        renamed = atom.rename_variables({Variable("X"): Variable("Z")})
        assert renamed == Atom("p", (Variable("Z"), Constant("a")))

    def test_zero_arity(self):
        atom = Atom("yes", ())
        assert atom.arity == 0 and atom.is_ground

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("", (Constant("a"),))

    def test_str(self):
        assert str(Atom("p", (Variable("X"), Constant("a")))) == "p(?X, a)"


class TestUnifyWithFact:
    def test_simple_match(self):
        pattern = Atom("p", (Variable("X"), Constant("a")))
        fact = Atom("p", (Constant("c"), Constant("a")))
        assert unify_with_fact(pattern, fact) == {Variable("X"): Constant("c")}

    def test_constant_mismatch(self):
        pattern = Atom("p", (Variable("X"), Constant("a")))
        fact = Atom("p", (Constant("c"), Constant("b")))
        assert unify_with_fact(pattern, fact) is None

    def test_repeated_variable_must_agree(self):
        pattern = Atom("p", (Variable("X"), Variable("X")))
        assert unify_with_fact(pattern, Atom("p", (Constant("a"), Constant("a")))) is not None
        assert unify_with_fact(pattern, Atom("p", (Constant("a"), Constant("b")))) is None

    def test_different_predicates_never_unify(self):
        assert unify_with_fact(Atom("p", (Variable("X"),)), Atom("q", (Constant("a"),))) is None

    def test_nulls_behave_like_constants(self):
        null = Null("_:z")
        pattern = Atom("p", (null, Variable("X")))
        fact_good = Atom("p", (null, Constant("a")))
        fact_bad = Atom("p", (Null("_:other"), Constant("a")))
        assert unify_with_fact(pattern, fact_good) == {Variable("X"): Constant("a")}
        assert unify_with_fact(pattern, fact_bad) is None

    def test_variable_can_bind_to_null(self):
        pattern = Atom("p", (Variable("X"),))
        fact = Atom("p", (Null("_:z"),))
        assert unify_with_fact(pattern, fact) == {Variable("X"): Null("_:z")}
