"""Observability neutrality: tracing/profiling on must change nothing.

The tracer and the plan profiler are instrumentation only.  This suite runs
the same scenarios with them off and on — across the row, batch, and
parallel executors — and asserts the *byte-identical* contract: the same
atoms (including invented-null labels), in the same order, with the same
gated engine counters.  It also sanity-checks that the instrumented sites
actually record events when tracing is on (a neutrality suite over dead
instrumentation would prove nothing).
"""

import itertools

import pytest

from repro.core.warded_engine import WardedEngine
from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.terms import Constant, Null
from repro.engine.incremental import DeltaSession
from repro.engine.mode import execution_mode
from repro.engine.parallel import parallel_threshold_override, shutdown_pool
from repro.engine.stats import STATS
from repro.obs.profile import PROFILER
from repro.obs.trace import TRACER
from repro.workloads.graphs import random_rdf_graph

WORKERS = 2

TC_PROGRAM = """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
    knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
"""

WARDED_PROGRAM = """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> exists ?Z . contact(?Y, ?Z).
    contact(?X, ?Z), knows(?W, ?X) -> reachable(?W, ?X).
"""

CHURN_PROGRAM = """
    edge(?X, ?Y) -> path(?X, ?Y).
    path(?X, ?Y), edge(?Y, ?Z) -> path(?X, ?Z).
    path(?X, ?Y) -> exists ?W . witness(?Y, ?W).
"""


@pytest.fixture(scope="module", autouse=True)
def stop_pool_after_module():
    yield
    shutdown_pool()


@pytest.fixture(autouse=True)
def obs_off_after():
    yield
    TRACER.disable()
    TRACER.clear()
    PROFILER.disable()
    PROFILER.reset()


def scenario_seminaive():
    database = random_rdf_graph(n_triples=100, n_nodes=16, seed=11).to_database()
    return SemiNaiveEvaluator(parse_program(TC_PROGRAM)).evaluate(database)


def scenario_warded():
    database = random_rdf_graph(n_triples=60, n_nodes=12, seed=5).to_database()
    return WardedEngine(parse_program(WARDED_PROGRAM)).materialise(database).instance


def edge(a, b):
    return Atom("edge", (Constant(a), Constant(b)))


def scenario_churn():
    """DeltaSession push/retract churn: covers the DRed spans and null GC."""
    session = DeltaSession(
        parse_program(CHURN_PROGRAM),
        [edge(f"n{i}", f"n{i + 1}") for i in range(5)],
    )
    session.push([edge("n5", "n6")])
    # Retract the chain's last edge: its downward closure (paths into n6 and
    # their witnesses) stays well under the degeneration threshold, so the
    # full mark/tombstone/rederive/null-GC pipeline runs.
    session.retract([edge("n5", "n6")])
    session.push([edge("n5", "n6")])
    instance = list(session.instance)
    session.close()
    return instance


SCENARIOS = [scenario_seminaive, scenario_warded, scenario_churn]


def fingerprint(scenario):
    """Atoms (order + null labels) and gated counters for one fresh run."""
    Null._counter = itertools.count()
    STATS.reset()
    atoms = [str(atom) for atom in scenario()]
    return atoms, STATS.gated()


def mode_context(mode):
    if mode == "parallel":
        return execution_mode("parallel", WORKERS)
    return execution_mode(mode)


class TestTracingNeutrality:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.__name__)
    @pytest.mark.parametrize("mode", ["row", "batch", "parallel"])
    def test_byte_parity_tracing_on_vs_off(self, scenario, mode):
        with mode_context(mode):
            baseline = fingerprint(scenario)
            TRACER.enable()
            traced = fingerprint(scenario)
            TRACER.disable()
            again = fingerprint(scenario)
        assert traced == baseline
        assert again == baseline
        assert baseline[1]["facts_added"] > 0

    def test_parallel_dispatch_parity_with_tracing(self):
        # Force every match across the process boundary so the
        # parallel.sync / parallel.dispatch records are actually exercised.
        with execution_mode("batch"):
            baseline = fingerprint(scenario_seminaive)
        with execution_mode("parallel", WORKERS), parallel_threshold_override(0):
            TRACER.enable()
            traced = fingerprint(scenario_seminaive)
            names = {event["name"] for event in TRACER.events()}
            TRACER.disable()
        assert traced == baseline
        assert "parallel.sync" in names
        assert "parallel.dispatch" in names

    def test_engine_sites_record_events(self):
        with execution_mode("batch"):
            TRACER.enable()
            fingerprint(scenario_seminaive)
            seminaive_names = {event["name"] for event in TRACER.events()}
            TRACER.enable()  # restart clean for the churn scenario
            fingerprint(scenario_churn)
            churn_names = {event["name"] for event in TRACER.events()}
            TRACER.disable()
        assert {"seminaive.stratum", "seminaive.rule"} <= seminaive_names
        assert {
            "delta.push",
            "push.stratum",
            "delta.retract",
            "retract.overdelete",
            "retract.tombstone",
            "retract.rederive",
            "retract.null_gc",
            "chase.resume",
        } <= churn_names

    def test_chase_records_runs_and_rounds(self):
        from repro.datalog.chase import ChaseEngine

        program = parse_program(
            "person(?X) -> exists ?Y . parent(?X, ?Y), person(?Y)."
        )
        database = [Atom("person", (Constant("alice"),))]
        with execution_mode("batch"):
            TRACER.enable()
            ChaseEngine(max_null_depth=3, on_limit="stop").chase(
                database, program
            )
            names = {event["name"] for event in TRACER.events()}
            TRACER.disable()
        assert "chase.run" in names
        assert "chase.round" in names


class TestProfilingNeutrality:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.__name__)
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_byte_parity_profiling_on_vs_off(self, scenario, mode):
        with mode_context(mode):
            baseline = fingerprint(scenario)
            PROFILER.enable()
            PROFILER.reset()
            profiled = fingerprint(scenario)
            assert PROFILER.snapshot(), "profiled run must collect plans"
            PROFILER.disable()
            again = fingerprint(scenario)
        assert profiled == baseline
        assert again == baseline

    def test_byte_parity_tracing_and_profiling_together(self):
        with execution_mode("batch"):
            baseline = fingerprint(scenario_churn)
            TRACER.enable()
            PROFILER.enable()
            PROFILER.reset()
            observed = fingerprint(scenario_churn)
            TRACER.disable()
            PROFILER.disable()
        assert observed == baseline
