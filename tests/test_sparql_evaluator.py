"""Tests for the SPARQL evaluation semantics ⟦P⟧_G (Section 3.1)."""

from repro.datalog.terms import Constant, Variable
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import (
    And,
    BGP,
    Bound,
    EqualsConstant,
    EqualsVariable,
    Filter,
    Not,
    Opt,
    OrCondition,
    Select,
    Union,
)
from repro.sparql.evaluator import evaluate_pattern, satisfies
from repro.sparql.mappings import Mapping

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def graph():
    return RDFGraph(
        [
            ("alice", "name", "Alice"),
            ("alice", "phone", "123"),
            ("bob", "name", "Bob"),
            ("alice", "knows", "bob"),
        ]
    )


class TestBGP:
    def test_single_pattern(self):
        result = evaluate_pattern(BGP.of(("?X", "name", "?Y")), graph())
        assert Mapping({X: "alice", Y: "Alice"}) in result
        assert len(result) == 2

    def test_join_within_bgp(self):
        result = evaluate_pattern(BGP.of(("?X", "name", "?Y"), ("?X", "phone", "?Z")), graph())
        assert result == {Mapping({X: "alice", Y: "Alice", Z: "123"})}

    def test_blank_nodes_are_existential(self):
        pattern = BGP.of(("?X", "phone", "_:B"))
        result = evaluate_pattern(pattern, graph())
        assert result == {Mapping({X: "alice"})}

    def test_constants_must_match(self):
        result = evaluate_pattern(BGP.of(("bob", "name", "?Y")), graph())
        assert result == {Mapping({Y: "Bob"})}

    def test_empty_bgp_yields_empty_mapping(self):
        assert evaluate_pattern(BGP(()), graph()) == {Mapping({})}

    def test_repeated_variable(self):
        g = RDFGraph([("a", "p", "a"), ("a", "p", "b")])
        result = evaluate_pattern(BGP.of(("?X", "p", "?X")), g)
        assert result == {Mapping({X: "a"})}


class TestOperators:
    def test_and(self):
        pattern = And(BGP.of(("?X", "name", "?Y")), BGP.of(("?X", "phone", "?Z")))
        assert evaluate_pattern(pattern, graph()) == {
            Mapping({X: "alice", Y: "Alice", Z: "123"})
        }

    def test_union(self):
        pattern = Union(BGP.of(("?X", "phone", "?Z")), BGP.of(("?X", "knows", "?Z")))
        assert len(evaluate_pattern(pattern, graph())) == 2

    def test_opt_keeps_unmatched_left(self):
        pattern = Opt(BGP.of(("?X", "name", "?Y")), BGP.of(("?X", "phone", "?Z")))
        result = evaluate_pattern(pattern, graph())
        assert Mapping({X: "alice", Y: "Alice", Z: "123"}) in result
        assert Mapping({X: "bob", Y: "Bob"}) in result

    def test_filter_equals_constant(self):
        pattern = Filter(BGP.of(("?X", "name", "?Y")), EqualsConstant(Y, Constant("Alice")))
        assert evaluate_pattern(pattern, graph()) == {Mapping({X: "alice", Y: "Alice"})}

    def test_filter_bound_after_opt(self):
        pattern = Filter(
            Opt(BGP.of(("?X", "name", "?Y")), BGP.of(("?X", "phone", "?Z"))),
            Bound(Z),
        )
        assert evaluate_pattern(pattern, graph()) == {
            Mapping({X: "alice", Y: "Alice", Z: "123"})
        }

    def test_filter_negation(self):
        pattern = Filter(
            BGP.of(("?X", "name", "?Y")), Not(EqualsConstant(Y, Constant("Alice")))
        )
        assert evaluate_pattern(pattern, graph()) == {Mapping({X: "bob", Y: "Bob"})}

    def test_select_projects(self):
        pattern = Select([X], BGP.of(("?X", "name", "?Y")))
        assert evaluate_pattern(pattern, graph()) == {
            Mapping({X: "alice"}),
            Mapping({X: "bob"}),
        }

    def test_nested_operators(self):
        pattern = Select(
            [X, Z],
            And(
                Union(BGP.of(("?X", "name", "Alice")), BGP.of(("?X", "name", "Bob"))),
                Opt(BGP.of(("?X", "name", "?Y")), BGP.of(("?X", "phone", "?Z"))),
            ),
        )
        result = evaluate_pattern(pattern, graph())
        assert Mapping({X: "alice", Z: "123"}) in result
        assert Mapping({X: "bob"}) in result


class TestConditionSatisfaction:
    def test_bound(self):
        assert satisfies(Mapping({X: "a"}), Bound(X))
        assert not satisfies(Mapping({}), Bound(X))

    def test_equals_variable(self):
        assert satisfies(Mapping({X: "a", Y: "a"}), EqualsVariable(X, Y))
        assert not satisfies(Mapping({X: "a", Y: "b"}), EqualsVariable(X, Y))
        assert not satisfies(Mapping({X: "a"}), EqualsVariable(X, Y))

    def test_boolean_connectives(self):
        condition = OrCondition(EqualsConstant(X, Constant("a")), Bound(Y))
        assert satisfies(Mapping({X: "a"}), condition)
        assert satisfies(Mapping({X: "zzz", Y: "w"}), condition)
        assert not satisfies(Mapping({X: "zzz"}), condition)
