"""Tests for the fixed program tau_owl2ql_core (Section 5.2).

The key cross-validation: the Datalog encoding agrees with the independent
DL-Lite_R oracle on instance/subclass entailment over the RDF representation
of ontologies — this is the computational content of Theorem 5.3 at the level
of single triples.
"""

import pytest

from repro.analysis.guards import classify_program
from repro.core.warded_engine import WardedEngine
from repro.datalog.terms import Constant
from repro.owl.dllite import DLLiteReasoner
from repro.owl.entailment_rules import owl2ql_core_program
from repro.owl.model import Ontology, some
from repro.owl.rdf_mapping import ontology_to_graph
from repro.workloads.ontologies import university_ontology


@pytest.fixture(scope="module")
def program():
    return owl2ql_core_program()


@pytest.fixture(scope="module")
def engine(program):
    return WardedEngine(program)


class TestProgramShape:
    def test_program_is_fixed_and_warded(self, program):
        report = classify_program(program)
        assert report.warded
        assert report.is_triq_lite
        assert program.has_constraints  # the two disjointness constraints

    def test_program_has_one_existential_rule(self, program):
        assert sum(1 for rule in program.rules if rule.has_existentials) == 1


class TestAgainstOracle:
    def _derived_types(self, engine, ontology):
        graph = ontology_to_graph(ontology)
        ground = engine.ground_semantics(graph.to_database())
        memberships = set()
        for atom in ground.with_predicate("type"):
            if atom.is_ground:
                memberships.add((atom.terms[0], atom.terms[1]))
        return memberships

    def test_animal_example(self, engine):
        ontology = Ontology()
        ontology.assert_class("animal", "dog")
        ontology.sub_class("animal", some("eats"))
        memberships = self._derived_types(engine, ontology)
        assert (Constant("dog"), Constant("animal")) in memberships
        assert (Constant("dog"), Constant("some_eats")) in memberships

    def test_agrees_with_dllite_oracle_on_university(self, engine):
        ontology = university_ontology(n_departments=1, students_per_department=4)
        reasoner = DLLiteReasoner(ontology)
        memberships = self._derived_types(engine, ontology)
        named_classes = {c.name for c in ontology.classes}
        individuals = ontology.individuals()

        for individual in individuals:
            for class_name in named_classes:
                oracle = reasoner.is_member(individual, __import__("repro.owl.model", fromlist=["NamedClass"]).NamedClass(class_name))
                datalog = (individual, Constant(class_name)) in memberships
                assert oracle == datalog, (
                    f"mismatch for {individual} : {class_name}: oracle={oracle} datalog={datalog}"
                )

    def test_subclass_closure_matches_oracle(self, engine):
        from repro.owl.model import NamedClass

        ontology = university_ontology(n_departments=1, students_per_department=2)
        reasoner = DLLiteReasoner(ontology)
        graph = ontology_to_graph(ontology)
        ground = engine.ground_semantics(graph.to_database())
        sc = {(a.terms[0], a.terms[1]) for a in ground.with_predicate("sc")}
        for sub in ("GraduateStudent", "Student", "Professor", "Faculty"):
            for sup in ("Person", "Employee", "Student", "Faculty"):
                oracle = reasoner.is_subclass(NamedClass(sub), NamedClass(sup))
                datalog = (Constant(sub), Constant(sup)) in sc
                assert oracle == datalog, f"{sub} subClassOf {sup}"

    def test_inverse_role_propagation(self, engine):
        ontology = Ontology()
        ontology.sub_property("headOf", "worksFor")
        ontology.assert_property("headOf", "ann", "dept")
        graph = ontology_to_graph(ontology)
        ground = engine.ground_semantics(graph.to_database())
        triples1 = {tuple(a.terms) for a in ground.with_predicate("triple1")}
        assert (Constant("ann"), Constant("worksFor"), Constant("dept")) in triples1
        assert (Constant("dept"), Constant("worksFor-"), Constant("ann")) in triples1


class TestConsistencyConstraints:
    def test_disjointness_violation_detected(self, program):
        engine = WardedEngine(program)
        ontology = Ontology()
        ontology.disjoint_classes("Cat", "Dog")
        ontology.assert_class("Cat", "felix").assert_class("Dog", "felix")
        database = ontology_to_graph(ontology).to_database()
        assert not engine.is_consistent(database)

    def test_consistent_ontology_passes(self, program):
        engine = WardedEngine(program)
        ontology = university_ontology(n_departments=1, students_per_department=2, with_disjointness=True)
        database = ontology_to_graph(ontology).to_database()
        assert engine.is_consistent(database)

    def test_property_disjointness_violation(self, program):
        engine = WardedEngine(program)
        ontology = Ontology()
        ontology.disjoint_properties("likes", "hates")
        ontology.assert_property("likes", "a", "b").assert_property("hates", "a", "b")
        database = ontology_to_graph(ontology).to_database()
        assert not engine.is_consistent(database)
