"""The dictionary-encoding contract: TermTable round-trips and ID-native parity.

Three layers of guarantee:

* **Round-trips** — property-based fuzz over collision-heavy spellings
  (shared prefixes, separator characters, null labels that look like
  constant values): encode→decode is the identity, IDs are dense and
  kind-tagged, and re-interning is idempotent.
* **The delta protocol** — replaying a parent table's suffixes into a fresh
  table reproduces the exact ID assignment (the parallel replica contract),
  and out-of-order replicas are rejected loudly.
* **Cross-mode parity** — an end-to-end run over a program exercising
  constants, invented nulls, and negation is byte-identical (sorted facts,
  null labels, gated counters) across ``row``, ``batch``, and ``parallel``
  executors after the ID-native refactor, and instance round-trips
  (encode → key → decode) reproduce the original atoms object-for-object.
"""

import itertools
import random
import string

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Instance
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.semantics import StratifiedSemantics
from repro.datalog.terms import Constant, Null, Variable
from repro.engine.interning import TERMS, TermTable, is_null_id
from repro.engine.mode import execution_mode
from repro.engine.parallel import parallel_threshold_override, shutdown_pool
from repro.engine.stats import STATS


@pytest.fixture(scope="module", autouse=True)
def stop_pool_after_module():
    yield
    shutdown_pool()


def _nasty_spellings(rng, n):
    """Collision-prone strings: shared prefixes, separators, lookalikes."""
    alphabet = ["a", "ab", "a:b", "_:z1", "c3:", ":", "", '"q"', "\n", "0"]
    out = []
    for i in range(n):
        base = rng.choice(alphabet)
        out.append(base + rng.choice(["", str(i % 7), base, "|" + base]))
    # The empty string is not a valid spelling everywhere; keep it non-empty.
    return [s or "x" for s in out]


class TestRoundTrips:
    @pytest.mark.parametrize("seed", range(5))
    def test_encode_decode_identity_and_tagging(self, seed):
        rng = random.Random(seed)
        table = TermTable()
        spellings = _nasty_spellings(rng, 200)
        ids = []
        for i, spelling in enumerate(spellings):
            if i % 3 == 0:
                tid = table.intern_null(spelling)
                assert is_null_id(tid)
                assert table.term(tid).label == spelling
            else:
                tid = table.intern_constant(spelling)
                assert not is_null_id(tid)
                assert table.term(tid).value == spelling
            ids.append(tid)
        # Idempotence: re-interning returns the same IDs.
        for i, spelling in enumerate(spellings):
            if i % 3 == 0:
                assert table.intern_null(spelling) == ids[i]
            else:
                assert table.intern_constant(spelling) == ids[i]
        # Distinct (kind, spelling) pairs never share an ID.
        seen = {}
        for i, (spelling, tid) in enumerate(zip(spellings, ids)):
            kind = "n" if i % 3 == 0 else "c"
            assert seen.setdefault((kind, spelling), tid) == tid
        by_key = {}
        for (kind, spelling), tid in seen.items():
            assert by_key.setdefault(tid, (kind, spelling)) == (kind, spelling)

    def test_constant_and_null_spaces_are_disjoint(self):
        table = TermTable()
        c = table.intern_constant("_:z1")  # a constant that *spells* like a null
        n = table.intern_null("_:z1")
        assert c != n
        assert isinstance(table.term(c), Constant)
        assert isinstance(table.term(n), Null)

    def test_intern_term_memoises_and_rejects_variables(self):
        # Only the canonical global table writes the per-object memo.
        term = Constant("hello-memo-check")
        tid = TERMS.intern_term(term)
        assert term._tid == tid
        assert TERMS.intern_term(term) == tid
        with pytest.raises(TypeError):
            TERMS.intern_term(Variable("X"))

    def test_secondary_tables_never_touch_the_shared_memo(self):
        # A non-canonical table must not cache ITS ids on term objects — that
        # would silently corrupt lookups against the global encoding.
        table = TermTable()
        table.intern_constant("padding")  # skew the secondary id space
        term = Constant("isolated-spelling")
        tid = table.intern_term(term)
        assert term._tid is None
        assert table.intern_term(term) == tid
        with pytest.raises(TypeError):
            table.intern_term(Variable("X"))

    def test_find_term_never_interns(self):
        table = TermTable()
        before = len(table)
        assert table.find_term(Constant("never-seen")) is None
        assert len(table) == before

    @pytest.mark.parametrize("seed", range(3))
    def test_atom_key_round_trip(self, seed):
        rng = random.Random(100 + seed)
        spellings = _nasty_spellings(rng, 40)
        atoms = []
        for _ in range(60):
            arity = rng.randint(0, 3)
            terms = tuple(
                Null("_:" + rng.choice(spellings))
                if rng.random() < 0.3
                else Constant(rng.choice(spellings))
                for _ in range(arity)
            )
            atoms.append(Atom(rng.choice(["p", "q", "r:"]), terms))
        for atom in atoms:
            key = TERMS.atom_key(atom)
            assert TERMS.decode_atom(key) == atom
            # The memoised key is stable.
            assert TERMS.atom_key(atom) is key


class TestDeltaProtocol:
    def test_replay_reproduces_ids(self):
        rng = random.Random(7)
        parent = TermTable()
        replica = TermTable()
        marks = (0, 0)
        for _ in range(5):
            for spelling in _nasty_spellings(rng, 30):
                if rng.random() < 0.4:
                    parent.intern_null(spelling)
                else:
                    parent.intern_constant(spelling)
            consts, nulls = parent.delta_since(*marks)
            replica.apply_delta(marks[0], marks[1], consts, nulls)
            marks = parent.counts()
            assert replica.counts() == parent.counts()
        # Every parent ID decodes identically in the replica.
        for tid in list(parent._constant_ids.values()) + list(parent._null_ids.values()):
            assert type(replica.term(tid)) is type(parent.term(tid))
            assert str(replica.term(tid)) == str(parent.term(tid))

    def test_overlapping_delta_is_idempotent(self):
        parent = TermTable()
        replica = TermTable()
        for value in ("a", "b", "c"):
            parent.intern_constant(value)
        consts, nulls = parent.delta_since(0, 0)
        replica.apply_delta(0, 0, consts, nulls)
        # Re-applying the same suffix (a re-ship after a pool respawn) is a no-op.
        replica.apply_delta(0, 0, consts, nulls)
        assert replica.counts() == parent.counts()

    def test_diverged_replica_is_rejected(self):
        replica = TermTable()
        replica.intern_constant("foreign")
        with pytest.raises(RuntimeError, match="divergence"):
            replica.apply_delta(0, 0, ["a"], [])

    def test_behind_the_start_is_rejected(self):
        replica = TermTable()
        with pytest.raises(RuntimeError, match="behind"):
            replica.apply_delta(5, 0, ["a"], [])


class TestInstanceEncoding:
    def test_instance_round_trip_and_key_membership(self):
        rng = random.Random(11)
        atoms = [
            Atom("p", (Constant(f"c{rng.randint(0, 9)}"), Constant(f"c{rng.randint(0, 9)}")))
            for _ in range(50)
        ] + [Atom("q", (Null(f"_:n{i}"),)) for i in range(5)]
        instance = Instance(atoms)
        assert set(instance) == set(atoms)
        for atom in set(atoms):
            assert instance.has_key(TERMS.atom_key(atom))
        assert not instance.has_key(TERMS.atom_key(Atom("p", (Constant("zz"), Constant("zz")))))
        assert instance.null_ids() == frozenset(
            TERMS.intern_term(Null(f"_:n{i}")) for i in range(5)
        )

    def test_add_key_decodes_only_new_facts(self):
        instance = Instance()
        key = TERMS.atom_key(Atom("p", (Constant("a"),)))
        atom = instance.add_key(key)
        assert atom == Atom("p", (Constant("a"),))
        assert instance.add_key(key) is None
        assert len(instance) == 1

    def test_snapshot_has_key_respects_the_cut(self):
        instance = Instance([Atom("p", (Constant("a"),))])
        frozen = instance.snapshot()
        instance.add(Atom("p", (Constant("b"),)))
        assert frozen.has_key(TERMS.atom_key(Atom("p", (Constant("a"),))))
        assert not frozen.has_key(TERMS.atom_key(Atom("p", (Constant("b"),))))


PROGRAM = """
triple(?X, knows, ?Y) -> knows(?X, ?Y).
knows(?X, ?Y) -> connected(?X, ?Y).
connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
"""

EXISTENTIAL = """
person(?X) -> exists ?Y . parent(?X, ?Y), person(?Y).
parent(?X, ?Y) -> ancestor(?X, ?Y).
ancestor(?X, ?Y), parent(?Y, ?Z) -> ancestor(?X, ?Z).
"""


def _edge_database(seed, n=60, nodes=14):
    rng = random.Random(seed)
    knows = Constant("knows")
    return [
        Atom(
            "triple",
            (Constant(f"v{rng.randint(0, nodes)}"), knows, Constant(f"v{rng.randint(0, nodes)}")),
        )
        for _ in range(n)
    ]


class TestCrossModeParity:
    """Byte-identical results and gated counters across all three executors."""

    @pytest.mark.parametrize("seed", range(3))
    def test_seminaive_three_modes(self, seed):
        database = _edge_database(seed)
        outcomes = {}
        for mode, workers, threshold in (
            ("row", None, None),
            ("batch", None, None),
            ("parallel", 2, 0),
        ):
            with execution_mode(mode, workers):
                STATS.reset()
                if threshold is None:
                    result = list(SemiNaiveEvaluator(parse_program(PROGRAM)).evaluate(database))
                else:
                    with parallel_threshold_override(threshold):
                        result = list(
                            SemiNaiveEvaluator(parse_program(PROGRAM)).evaluate(database)
                        )
                outcomes[mode] = (result, STATS.gated())
        assert outcomes["row"] == outcomes["batch"] == outcomes["parallel"]

    def test_chase_null_labels_three_modes(self):
        program = parse_program(EXISTENTIAL)
        database = [Atom("person", (Constant(f"p{i}"),)) for i in range(8)]
        outcomes = {}
        for mode, workers, threshold in (
            ("row", None, None),
            ("batch", None, None),
            ("parallel", 2, 0),
        ):
            with execution_mode(mode, workers):
                Null._counter = itertools.count()
                STATS.reset()
                from repro.datalog.chase import ChaseEngine

                if threshold is None:
                    result = ChaseEngine(max_null_depth=2, on_limit="stop").chase(
                        database, program
                    )
                else:
                    with parallel_threshold_override(threshold):
                        result = ChaseEngine(max_null_depth=2, on_limit="stop").chase(
                            database, program
                        )
                # sorted_atoms() stringifies every term — the full decode
                # boundary — so label-for-label equality is pinned here.
                outcomes[mode] = (
                    result.instance.sorted_atoms(),
                    STATS.gated(),
                )
        assert outcomes["row"] == outcomes["batch"] == outcomes["parallel"]

    def test_stratified_semantics_is_unchanged_by_encoding(self):
        # An end-to-end object-level check through the decode boundary:
        # semantics results equal a straightforward reference set.
        program = parse_program("p(?X), not q(?X) -> r(?X).")
        database = [
            Atom("p", (Constant("a"),)),
            Atom("p", (Constant("b"),)),
            Atom("q", (Constant("a"),)),
        ]
        result = StratifiedSemantics(program).materialise(database)
        assert Atom("r", (Constant("b"),)) in result
        assert Atom("r", (Constant("a"),)) not in result

    def test_parallel_dispatch_ships_columnar_bytes(self):
        database = _edge_database(99, n=120, nodes=18)
        with execution_mode("parallel", 2), parallel_threshold_override(0):
            STATS.reset()
            SemiNaiveEvaluator(parse_program(PROGRAM)).evaluate(database)
            assert STATS.parallel_tasks > 0
            assert STATS.parallel_bytes_shipped > 0

    def test_string_spellings_ship_once_not_per_fact(self):
        # The dictionary-delta contract, observed through payload sizes: with
        # long URI-like spellings, shipping N facts over a small vocabulary
        # must cost far less than N * spelling-length, because each spelling
        # crosses the boundary once.
        long = "http://example.org/a-very-long-namespace/prefix#"
        database = [
            Atom(
                "triple",
                (
                    Constant(f"{long}node{i % 20}"),
                    Constant("knows"),
                    Constant(f"{long}node{(i * 7) % 20}"),
                ),
            )
            for i in range(5000)
        ]
        program = parse_program("triple(?X, knows, ?Y) -> knows(?X, ?Y).")
        with execution_mode("parallel", 2), parallel_threshold_override(0):
            STATS.reset()
            SemiNaiveEvaluator(program).evaluate(database)
            assert STATS.parallel_tasks > 0
            shipped = STATS.parallel_bytes_shipped
        naive_floor = len(database) * len(long)
        assert shipped < naive_floor, (
            f"columnar wire format shipped {shipped} bytes; object shipping "
            f"would exceed {naive_floor}"
        )
