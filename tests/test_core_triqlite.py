"""Tests for TriQ-Lite 1.0 queries (Definition 6.1, Theorem 6.7 machinery)."""

import pytest

from repro.core.triqlite import TriQLiteQuery, TriQLiteValidationError
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.semantics import INCONSISTENT
from repro.datalog.terms import Constant


def db(*facts):
    return Database([parse_atom(f) for f in facts])


class TestValidation:
    def test_every_datalog_query_is_triq_lite(self):
        """Section 6.3: every Datalog query is a TriQ-Lite 1.0 query."""
        program = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), e(?Y, ?Z) -> t(?X, ?Z). t(?X, ?Y) -> answer(?X, ?Y)."
        )
        query = TriQLiteQuery(program, "answer")
        assert query.report.is_triq_lite

    def test_warded_existential_program_accepted(self):
        program = parse_program(
            """
            person(?X) -> exists ?Y . parent(?X, ?Y).
            parent(?X, ?Y) -> person(?Y).
            person(?X) -> answer(?X).
            """
        )
        assert TriQLiteQuery(program, "answer").report.is_triq_lite

    def test_clique_program_rejected(self):
        from repro.reductions.clique import clique_program

        with pytest.raises(TriQLiteValidationError):
            TriQLiteQuery(clique_program(), "yes", output_arity=0)

    def test_non_grounded_negation_rejected(self):
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            s(?X, ?Y), not seen(?Y) -> answer(?X).
            """
        )
        with pytest.raises(TriQLiteValidationError) as excinfo:
            TriQLiteQuery(program, "answer")
        message = str(excinfo.value)
        assert "negated" in message or "grounded" in message or "warded" in message

    def test_owl_entailment_translations_are_triq_lite(self):
        """Corollary 6.2 on a concrete pattern."""
        from repro.sparql.parser import parse_sparql
        from repro.translation.entailment_regime import entailment_regime_query

        pattern = parse_sparql("SELECT ?X WHERE { ?X eats _:B }")
        for mode in ("U", "All"):
            query, _ = entailment_regime_query(pattern, mode)
            assert query.report.is_triq_lite


class TestEvaluation:
    def test_recursive_reachability(self):
        program = parse_program(
            """
            edge(?X, ?Y) -> reach(?X, ?Y).
            reach(?X, ?Y), edge(?Y, ?Z) -> reach(?X, ?Z).
            reach(?X, ?Y) -> answer(?X, ?Y).
            """
        )
        query = TriQLiteQuery(program, "answer")
        answers = query.evaluate(db("edge(a,b)", "edge(b,c)"))
        assert (Constant("a"), Constant("c")) in answers

    def test_existential_witnesses_do_not_leak(self):
        program = parse_program(
            """
            person(?X) -> exists ?Y . parent(?X, ?Y).
            parent(?X, ?Y) -> has_parent(?X).
            has_parent(?X) -> answer(?X).
            """
        )
        query = TriQLiteQuery(program, "answer")
        assert query.evaluate(db("person(a)")) == {(Constant("a"),)}

    def test_constraints(self):
        program = parse_program(
            """
            p(?X) -> answer(?X).
            p(?X), q(?X) -> false.
            """
        )
        query = TriQLiteQuery(program, "answer")
        assert query.evaluate(db("p(a)")) == {(Constant("a"),)}
        assert query.evaluate(db("p(a)", "q(a)")) is INCONSISTENT
        assert query.holds(db("p(a)", "q(a)"), (Constant("anything"),))
        assert not query.is_consistent(db("p(a)", "q(a)"))

    def test_materialise_exposes_provenance(self):
        program = parse_program("e(?X, ?Y) -> answer(?X).")
        query = TriQLiteQuery(program, "answer")
        result = query.materialise(db("e(a,b)"))
        assert parse_atom("answer(a)") in result.provenance

    def test_agrees_with_generic_chase_semantics(self):
        from repro.datalog.program import Query
        from repro.datalog.semantics import evaluate_query

        program = parse_program(
            """
            emp(?X) -> exists ?Y . works_for(?X, ?Y).
            works_for(?X, ?Y) -> employed(?X).
            emp(?X), not senior(?X) -> junior(?X).
            junior(?X) -> answer(?X).
            """
        )
        database = db("emp(a)", "emp(b)", "senior(b)")
        lite = TriQLiteQuery(program, "answer").evaluate(database)
        generic = evaluate_query(Query(program, "answer"), database)
        assert lite == generic == {(Constant("a"),)}
