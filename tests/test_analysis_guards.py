"""Tests for the guardedness / wardedness hierarchy (Sections 4, 6)."""

from repro.analysis.guards import (
    classify_program,
    find_ward,
    has_grounded_negation,
    is_frontier_guarded,
    is_guarded,
    is_nearly_frontier_guarded,
    is_warded,
    is_warded_with_minimal_interaction,
    is_weakly_frontier_guarded,
    is_weakly_guarded,
)
from repro.analysis.variables import classify_rule_variables
from repro.datalog.parser import parse_program


def example_41_program():
    return parse_program(
        """
        p(?X, ?Y), s(?Y, ?Z) -> exists ?W . t(?Y, ?X, ?W).
        t(?X, ?Y, ?Z) -> exists ?W . p(?W, ?Z).
        t(?X, ?Y, ?Z) -> s(?X, ?Y).
        """
    )


class TestHierarchyOnPaperExamples:
    def test_example_41_weakly_frontier_guarded_not_weakly_guarded(self):
        """The paper states this program is weakly-frontier-guarded but not weakly-guarded."""
        program = example_41_program()
        assert is_weakly_frontier_guarded(program)
        assert not is_weakly_guarded(program)

    def test_plain_datalog_is_everything(self):
        """Every Datalog program is trivially warded (Section 6.3 observation)."""
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), e(?Y, ?Z) -> t(?X, ?Z).")
        report = classify_program(program)
        assert report.warded and report.weakly_frontier_guarded
        assert report.weakly_guarded and report.nearly_frontier_guarded
        assert report.is_triq and report.is_triq_lite

    def test_guardedness_requires_single_atom_with_all_variables(self):
        guarded = parse_program("r(?X, ?Y, ?Z), s(?X, ?Y) -> t(?X, ?Z).")
        not_guarded = parse_program("r(?X, ?Y), s(?Y, ?Z) -> t(?X, ?Z).")
        assert is_guarded(guarded)
        assert not is_guarded(not_guarded)

    def test_frontier_guarded(self):
        program = parse_program("r(?X, ?Z), s(?Z, ?Y) -> exists ?W . t(?X, ?W).")
        assert is_frontier_guarded(program)

    def test_example_610_is_warded(self):
        program = parse_program(
            """
            s(?X, ?Y, ?Z) -> exists ?W . s(?X, ?Z, ?W).
            s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
            t(?X) -> exists ?Z . p(?X, ?Z).
            p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
            r(?X, ?Y, ?Z) -> p(?X, ?Z).
            """
        )
        assert is_warded(program)

    def test_owl2ql_core_is_warded(self):
        from repro.owl.entailment_rules import owl2ql_core_program

        report = classify_program(owl2ql_core_program())
        assert report.warded
        assert report.grounded_negation  # no negation at all
        assert report.is_triq_lite

    def test_clique_program_is_triq_but_not_triq_lite(self):
        from repro.reductions.clique import clique_program

        report = classify_program(clique_program())
        assert report.is_triq
        assert not report.warded
        assert not report.is_triq_lite

    def test_atm_program_minimal_interaction_but_not_warded(self):
        from repro.reductions.atm import atm_program

        program = atm_program()
        assert is_warded_with_minimal_interaction(program)
        assert not is_warded(program)

    def test_warded_implies_minimal_interaction(self):
        program = example_41_program()
        if is_warded(program):
            assert is_warded_with_minimal_interaction(program)


class TestNearlyFrontierGuarded:
    def test_transitive_closure_is_nearly_frontier_guarded(self):
        # Not frontier-guarded, but all body variables are harmless.
        program = parse_program(
            """
            e(?X, ?Y) -> t(?X, ?Y).
            t(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).
            """
        )
        assert is_nearly_frontier_guarded(program)

    def test_violating_program(self):
        # The second rule is not frontier-guarded and ?Y is harmful.
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            s(?X, ?Y), s(?Z, ?Y) -> s(?X, ?Z).
            """
        )
        assert not is_nearly_frontier_guarded(program)


class TestGroundedNegation:
    def test_grounded_negation_accepts_constant_and_harmless_terms(self):
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            base(?X), not bad(?X) -> good(?X).
            """
        )
        assert has_grounded_negation(program)

    def test_negation_on_harmful_variable_rejected(self):
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            s(?X, ?Y), not seen(?Y) -> fresh(?X).
            """
        )
        assert not has_grounded_negation(program)

    def test_clique_program_negation_is_not_grounded(self):
        from repro.reductions.clique import clique_program

        assert not has_grounded_negation(clique_program())


class TestWardSearch:
    def test_find_ward_returns_none_without_dangerous_variables(self):
        program = parse_program("e(?X, ?Y) -> t(?X, ?Y).")
        rule = program.rules[0]
        assert find_ward(rule, classify_rule_variables(rule, program)) is None

    def test_find_ward_identifies_the_ward(self):
        program = parse_program(
            """
            p(?X) -> exists ?Y . s(?X, ?Y).
            s(?X, ?Y), base(?X) -> s(?Y, ?X).
            """
        )
        rule = program.rules[1]
        classification = classify_rule_variables(rule, program.positive_program())
        ward = find_ward(rule, classification)
        assert ward is not None and ward.predicate == "s"


class TestReport:
    def test_violations_are_reported(self):
        from repro.reductions.clique import clique_program

        report = classify_program(clique_program())
        assert "warded" in report.violations
        assert "rule" in report.violations["warded"]

    def test_stratification_flag(self):
        program = parse_program("p(?X), not q(?X) -> q(?X).")
        report = classify_program(program)
        assert not report.stratified and not report.is_triq
