"""Tests for the N-Triples-style parser and serialiser."""

import pytest

from repro.datalog.terms import Null
from repro.rdf.parser import RDFParseError, parse_ntriples, serialize_ntriples


class TestParse:
    def test_basic_triples(self):
        graph = parse_ntriples(
            """
            dbUllman is_author_of "The Complete Book" .
            dbUllman name "Jeffrey Ullman" .
            """
        )
        assert len(graph) == 2
        assert ("dbUllman", "name", "Jeffrey Ullman") in graph

    def test_comments_and_blank_lines(self):
        graph = parse_ntriples("# a comment\n\n a p b .\n")
        assert len(graph) == 1

    def test_prefixed_names(self):
        graph = parse_ntriples("r1 rdf:type owl:Restriction .")
        assert ("r1", "rdf:type", "owl:Restriction") in graph

    def test_angle_uris(self):
        graph = parse_ntriples("<http://dbpedia.org/u> owl:sameAs yagoUllman .")
        assert ("http://dbpedia.org/u", "owl:sameAs", "yagoUllman") in graph

    def test_blank_nodes(self):
        graph = parse_ntriples("_:b1 is_author_of book .")
        triple = next(iter(graph))
        assert isinstance(triple.subject, Null)

    def test_missing_component_fails(self):
        with pytest.raises(RDFParseError):
            parse_ntriples("a p .")

    def test_trailing_garbage_fails(self):
        with pytest.raises(RDFParseError):
            parse_ntriples("a p b extra stuff .")

    def test_dot_is_optional(self):
        assert len(parse_ntriples("a p b")) == 1


class TestSerialize:
    def test_roundtrip(self):
        source = parse_ntriples(
            """
            dbUllman is_author_of "The Complete Book" .
            dbAho name "Alfred Aho" .
            r1 rdf:type owl:Restriction .
            <http://example.org/x> owl:sameAs y .
            """
        )
        assert parse_ntriples(serialize_ntriples(source)) == source

    def test_empty_graph(self):
        from repro.rdf.graph import RDFGraph

        assert serialize_ntriples(RDFGraph()) == ""

    def test_deterministic_order(self):
        graph = parse_ntriples("b p c .\na p b .")
        lines = serialize_ntriples(graph).strip().splitlines()
        assert lines == sorted(lines)
