"""Cross-engine consistency: warded engine vs chase vs semi-naive.

These integration tests pin down the contract that all three evaluation
engines implement the same Section 3.2 semantics wherever their domains
overlap — the safety net behind using the fast warded engine for TriQ-Lite
1.0 and the generic chase for TriQ 1.0.
"""

import pytest

from repro.core.warded_engine import WardedEngine
from repro.datalog.chase import ChaseEngine
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.semantics import StratifiedSemantics
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.workloads.graphs import random_rdf_graph

DATALOG_PROGRAMS = [
    # transitive closure
    "e(?X, ?Y) -> t(?X, ?Y). t(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).",
    # same-generation
    """
    flat(?X, ?Y) -> sg(?X, ?Y).
    up(?X, ?X1), sg(?X1, ?Y1), down(?Y1, ?Y) -> sg(?X, ?Y).
    """,
    # stratified negation
    """
    e(?X, ?Y) -> r(?X, ?Y).
    r(?X, ?Y), r(?Y, ?Z) -> r(?X, ?Z).
    node(?X), node(?Y), not r(?X, ?Y) -> unreachable(?X, ?Y).
    unreachable(?X, ?X) -> isolated(?X).
    """,
]


def graph_database(seed: int) -> Database:
    database = Database()
    graph = random_rdf_graph(20, n_nodes=6, predicates=["e", "up", "down", "flat"], seed=seed)
    for triple in graph:
        database.add(parse_atom(f"{triple.predicate.value}({triple.subject.value}, {triple.object.value})"))
        database.add(parse_atom(f"node({triple.subject.value})"))
        database.add(parse_atom(f"node({triple.object.value})"))
    return database


class TestEngineAgreement:
    @pytest.mark.parametrize("program_text", DATALOG_PROGRAMS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_three_engines_agree_on_datalog(self, program_text, seed):
        program = parse_program(program_text)
        database = graph_database(seed)

        seminaive = SemiNaiveEvaluator(program).evaluate(database)
        warded = WardedEngine(program).materialise(database).instance
        chase = StratifiedSemantics(program, ChaseEngine()).materialise(database)

        assert seminaive.to_set() == warded.to_set() == chase.to_set()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_warded_and_chase_agree_on_terminating_existential_programs(self, seed):
        program = parse_program(
            """
            e(?X, ?Y) -> related(?X, ?Y).
            related(?X, ?Y) -> exists ?Z . meeting(?X, ?Y, ?Z).
            meeting(?X, ?Y, ?Z) -> met(?X, ?Y).
            met(?X, ?Y), not e(?Y, ?X) -> oneway(?X, ?Y).
            """
        )
        database = graph_database(seed + 10)
        warded_ground = WardedEngine(program).ground_semantics(database)
        chase_ground = (
            StratifiedSemantics(program, ChaseEngine()).materialise(database).ground_part()
        )
        assert warded_ground.to_set() == chase_ground.to_set()

    def test_owl_program_ground_semantics_stable_under_engine_choice(self):
        from repro.owl.entailment_rules import owl2ql_core_program
        from repro.workloads.ontologies import university_graph

        program = owl2ql_core_program()
        database = university_graph(n_departments=1, students_per_department=3).to_database()
        warded_ground = WardedEngine(program).ground_semantics(database)
        chase_ground = (
            StratifiedSemantics(program, ChaseEngine(max_steps=1_000_000))
            .materialise(database)
            .ground_part()
        )
        assert warded_ground.to_set() == chase_ground.to_set()
