"""Unit tests for the engine span tracer (repro.obs.trace).

The overhead contract — disabled tracing hands out a shared no-op span and
records nothing — and the enabled behaviour: nesting depths, monotonic
relative timings, ring-buffer bounding with a drop counter, and JSON export.
Engine-level neutrality (tracing on changes no results/counters) lives in
``tests/test_obs_neutrality.py``.
"""

import json
import time

import pytest

from repro.obs.trace import _NULL_SPAN, TRACER, Tracer


@pytest.fixture
def tracer():
    return Tracer(capacity=16)


class TestDisabled:
    def test_disabled_by_default(self, tracer):
        assert tracer.enabled is False
        assert TRACER.enabled is False

    def test_span_returns_shared_null_span(self, tracer):
        span = tracer.span("anything", key="value")
        assert span is _NULL_SPAN
        assert tracer.span("other") is span

    def test_null_span_records_nothing(self, tracer):
        with tracer.span("phase"):
            pass
        assert tracer.events() == []

    def test_null_span_enter_yields_none(self, tracer):
        with tracer.span("phase") as span:
            assert span is None


class TestEnabled:
    def test_span_records_one_event_with_attrs(self, tracer):
        tracer.enable()
        with tracer.span("push.stratum", stratum=3):
            pass
        events = tracer.events()
        assert len(events) == 1
        event = events[0]
        assert event["name"] == "push.stratum"
        assert event["attrs"] == {"stratum": 3}
        assert event["depth"] == 0
        assert event["duration_us"] >= 0

    def test_live_span_accepts_attrs_between_enter_and_exit(self, tracer):
        tracer.enable()
        with tracer.span("phase") as span:
            span.attrs["rounds"] = 7
        assert tracer.events()[0]["attrs"] == {"rounds": 7}

    def test_nesting_depths(self, tracer):
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {event["name"]: event for event in tracer.events()}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["sibling"]["depth"] == 1

    def test_inner_spans_recorded_before_outer(self, tracer):
        # Events land in the ring at span *exit*, so the inner span appears
        # first; start_us still orders them by start time.
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [event["name"] for event in tracer.events()]
        assert names == ["inner", "outer"]

    def test_record_leaf_event(self, tracer):
        tracer.enable()
        start = time.perf_counter_ns()
        tracer.record("chase.round", start, steps=12)
        events = tracer.events()
        assert events[0]["name"] == "chase.round"
        assert events[0]["attrs"] == {"steps": 12}

    def test_start_us_is_relative_to_first_event(self, tracer):
        tracer.enable()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        events = tracer.events()
        assert events[0]["start_us"] == 0
        assert events[1]["start_us"] >= events[0]["start_us"]


class TestRing:
    def test_ring_bounds_memory_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        tracer.enable()
        for i in range(10):
            with tracer.span("event", i=i):
                pass
        events = tracer.events()
        assert len(events) == 4
        assert tracer.dropped == 6
        # Oldest-first: the survivors are the last four spans.
        assert [event["attrs"]["i"] for event in events] == [6, 7, 8, 9]

    def test_enable_resizes_and_clears(self, tracer):
        tracer.enable()
        with tracer.span("old"):
            pass
        tracer.enable(capacity=2)
        assert tracer.events() == []
        assert tracer.capacity == 2

    def test_clear_keeps_switch_state(self, tracer):
        tracer.enable()
        with tracer.span("old"):
            pass
        tracer.clear()
        assert tracer.events() == []
        assert tracer.enabled is True

    def test_disable_keeps_events_readable(self, tracer):
        tracer.enable()
        with tracer.span("kept"):
            pass
        tracer.disable()
        assert [event["name"] for event in tracer.events()] == ["kept"]


class TestExport:
    def test_export_json_round_trips(self, tracer, tmp_path):
        tracer.enable()
        with tracer.span("phase", label="x"):
            pass
        path = tmp_path / "trace.json"
        tracer.export_json(path)
        document = json.loads(path.read_text())
        assert document["dropped"] == 0
        assert document["events"][0]["name"] == "phase"
        assert document["events"][0]["attrs"] == {"label": "x"}
