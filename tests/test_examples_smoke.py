"""Executability smoke test for every script in ``examples/``.

The README and the docs link these scripts as the entry points into the
library, so they must never rot: each one is run as a real subprocess (fresh
interpreter, ``PYTHONPATH=src``, no test-session state) and must exit 0.
New examples are picked up automatically — dropping a file into
``examples/`` enrols it here.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    # The README's quickstart depends on these two by name.
    assert "quickstart.py" in EXAMPLES
    assert "streaming_updates.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"examples/{script} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"examples/{script} printed nothing"
