"""Regression tests: execution-mode env vars resolve lazily, not at import."""

import os
import subprocess
import sys

import pytest

from repro.engine import mode


@pytest.fixture
def clean_mode(monkeypatch):
    """Reset the module's resolved state and scrub the env for one test."""
    monkeypatch.delenv("REPRO_ENGINE_MODE", raising=False)
    monkeypatch.delenv("REPRO_ENGINE_PARALLEL", raising=False)
    mode._reset_for_tests()
    yield
    mode._reset_for_tests()


class TestLazyResolution:
    def test_env_change_after_import_is_honoured(self, clean_mode, monkeypatch):
        """The historic footgun: setting the env var after import must work."""
        monkeypatch.setenv("REPRO_ENGINE_MODE", "row")
        assert mode.get_execution_mode() == "row"
        assert not mode.batch_enabled()

    def test_parallel_env_alone_selects_parallel(self, clean_mode, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", "3")
        assert mode.get_execution_mode() == "parallel"
        assert mode.get_worker_count() == 3
        assert mode.parallel_enabled()

    def test_mode_env_wins_over_parallel_env(self, clean_mode, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_MODE", "batch")
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", "4")
        assert mode.get_execution_mode() == "batch"
        assert mode.get_worker_count() == 4

    def test_default_is_batch_with_two_workers(self, clean_mode):
        assert mode.get_execution_mode() == "batch"
        assert mode.get_worker_count() == 2

    def test_empty_strings_count_as_unset(self, clean_mode, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_MODE", "")
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", "")
        assert mode.get_execution_mode() == "batch"
        assert mode.get_worker_count() == 2

    def test_explicit_setter_beats_environment(self, clean_mode, monkeypatch):
        """set_execution_mode before first env read pins the value for good."""
        monkeypatch.setenv("REPRO_ENGINE_MODE", "parallel")
        mode.set_execution_mode("row")
        assert mode.get_execution_mode() == "row"
        # ...and later env churn is ignored once pinned.
        monkeypatch.setenv("REPRO_ENGINE_MODE", "batch")
        assert mode.get_execution_mode() == "row"

    def test_explicit_worker_setter_beats_environment(self, clean_mode, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", "7")
        mode.set_worker_count(5)
        assert mode.get_worker_count() == 5

    def test_bad_mode_raises_at_first_use_not_import(self, clean_mode, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_MODE", "bogus")
        with pytest.raises(ValueError, match="REPRO_ENGINE_MODE"):
            mode.get_execution_mode()

    def test_bad_worker_count_raises_at_first_use(self, clean_mode, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", "zero")
        with pytest.raises(ValueError, match="REPRO_ENGINE_PARALLEL"):
            mode.get_worker_count()
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", "0")
        mode._reset_for_tests()
        with pytest.raises(ValueError, match=">= 1"):
            mode.get_worker_count()

    def test_execution_mode_context_restores(self, clean_mode):
        mode.set_execution_mode("batch")
        with mode.execution_mode("row"):
            assert mode.get_execution_mode() == "row"
        assert mode.get_execution_mode() == "batch"

    def test_import_does_not_read_environment(self):
        """Importing the module in a fresh process must not touch os.environ.

        A poisoned value would have raised at import time under the old
        eager scheme; lazily it only raises when the mode is first needed.
        """
        code = (
            "import os\n"
            "os.environ['REPRO_ENGINE_MODE'] = 'bogus'\n"
            "import repro.engine.mode as m\n"  # must not raise
            "m.set_execution_mode('row')\n"    # explicit setter still works
            "assert m.get_execution_mode() == 'row'\n"
            "print('ok')\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_ENGINE_MODE", None)
        env.pop("REPRO_ENGINE_PARALLEL", None)
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"

    def test_configure_after_submodule_imports(self):
        """The documented footgun scenario: import engines first, then configure."""
        code = (
            "import repro  # pulls in every engine layer\n"
            "from repro.engine.mode import get_execution_mode, set_execution_mode\n"
            "set_execution_mode('row')\n"
            "assert get_execution_mode() == 'row'\n"
            "print('ok')\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_ENGINE_MODE", None)
        env.pop("REPRO_ENGINE_PARALLEL", None)
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"
