"""Unit tests for the compiled join-plan core (:mod:`repro.engine`)."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database, Instance
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Null, Variable
from repro.engine.plan import compile_body, compile_rule
from repro.engine.stats import STATS

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def subs(plan, instance, initial=None):
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in s.items()))
        for s in plan.execute(instance, initial)
    )


class TestJoinPlan:
    def test_single_atom_scan(self):
        instance = Instance([Atom("p", (a, b)), Atom("p", (b, c))])
        plan = compile_body((Atom("p", (X, Y)),))
        assert subs(plan, instance) == [
            (("X", "a"), ("Y", "b")),
            (("X", "b"), ("Y", "c")),
        ]

    def test_constant_probe(self):
        instance = Instance([Atom("p", (a, b)), Atom("p", (b, c))])
        plan = compile_body((Atom("p", (a, Y)),))
        assert subs(plan, instance) == [(("Y", "b"),)]

    def test_join_two_atoms(self):
        instance = Instance(
            [Atom("e", (a, b)), Atom("e", (b, c)), Atom("e", (c, d))]
        )
        plan = compile_body((Atom("e", (X, Y)), Atom("e", (Y, Z))))
        assert subs(plan, instance) == [
            (("X", "a"), ("Y", "b"), ("Z", "c")),
            (("X", "b"), ("Y", "c"), ("Z", "d")),
        ]

    def test_repeated_variable_within_atom(self):
        instance = Instance([Atom("p", (a, a)), Atom("p", (a, b))])
        plan = compile_body((Atom("p", (X, X)),))
        assert subs(plan, instance) == [(("X", "a"),)]

    def test_repeated_variable_across_atoms(self):
        instance = Instance([Atom("p", (a,)), Atom("q", (a,)), Atom("q", (b,))])
        plan = compile_body((Atom("p", (X,)), Atom("q", (X,))))
        assert subs(plan, instance) == [(("X", "a"),)]

    def test_initial_bindings_respected_and_emitted(self):
        instance = Instance([Atom("p", (a, b)), Atom("p", (b, c))])
        plan = compile_body((Atom("p", (X, Y)),), prebound=(X,))
        assert subs(plan, instance, {X: b}) == [(("X", "b"), ("Y", "c"))]

    def test_initial_binding_of_foreign_variable_is_kept(self):
        instance = Instance([Atom("p", (a,))])
        plan = compile_body((Atom("p", (X,)),), prebound=(Z,))
        assert subs(plan, instance, {Z: d}) == [(("X", "a"), ("Z", "d"))]

    def test_empty_body_yields_one_empty_substitution(self):
        plan = compile_body(())
        assert subs(plan, Instance()) == [()]

    def test_no_match_on_missing_predicate(self):
        plan = compile_body((Atom("missing", (X,)),))
        assert subs(plan, Instance([Atom("p", (a,))])) == []

    def test_arity_mismatch_is_skipped(self):
        instance = Instance([Atom("p", (a,)), Atom("p", (a, b))])
        plan = compile_body((Atom("p", (X, Y)),))
        assert subs(plan, instance) == [(("X", "a"), ("Y", "b"))]

    def test_additions_during_iteration_are_invisible(self):
        instance = Instance([Atom("p", (a,))])
        plan = compile_body((Atom("p", (X,)),))
        seen = []
        for sub in plan.execute(instance):
            instance.add(Atom("p", (Constant(f"x{len(seen)}"),)))
            seen.append(sub[X])
        assert seen == [a]

    def test_exists(self):
        instance = Instance([Atom("p", (a, b))])
        assert compile_body((Atom("p", (X, Y)),)).exists(instance)
        assert not compile_body((Atom("p", (b, Y)),)).exists(instance)

    def test_plan_cache_returns_same_object(self):
        body = (Atom("p", (X, Y)), Atom("q", (Y,)))
        assert compile_body(body) is compile_body(body)
        assert compile_body(body) is not compile_body(body, prebound=(X,))


class TestCompiledRule:
    def test_negation_probe_blocks(self):
        program = parse_program("p(?X), not q(?X) -> r(?X).")
        crule = compile_rule(program.rules[0])
        reference = Instance([Atom("q", (a,))])
        assert crule.negation_blocked({X: a}, reference)
        assert not crule.negation_blocked({X: b}, reference)

    def test_negation_probe_against_snapshot(self):
        program = parse_program("p(?X), not q(?X) -> r(?X).")
        crule = compile_rule(program.rules[0])
        instance = Instance([Atom("q", (a,))])
        frozen = instance.snapshot()
        instance.add(Atom("q", (b,)))
        assert crule.negation_blocked({X: a}, frozen)
        assert not crule.negation_blocked({X: b}, frozen)

    def test_delta_substitutions_require_delta_overlap(self):
        program = parse_program("e(?X, ?Y), e(?Y, ?Z) -> t(?X, ?Z).")
        crule = compile_rule(program.rules[0])
        instance = Instance([Atom("e", (a, b)), Atom("e", (b, c))])
        empty_delta = Instance([Atom("other", (a,))])
        assert list(crule.delta_substitutions(instance, empty_delta)) == []
        delta = Instance([Atom("e", (b, c))])
        found = {
            tuple(sorted((v.name, str(t)) for v, t in s.items()))
            for s in crule.delta_substitutions(instance, delta)
        }
        # Both pivots hit the delta fact e(b, c).
        assert (("X", "a"), ("Y", "b"), ("Z", "c")) in found

    def test_head_facts_ground_and_existential(self):
        program = parse_program("p(?X) -> exists ?Y . q(?X, ?Y).")
        crule = compile_rule(program.rules[0])
        fresh = Null.fresh("w")
        ev = next(iter(program.rules[0].existential_variables))
        facts = crule.head_facts({X: a, ev: fresh})
        assert facts == [Atom("q", (a, fresh))]

    def test_head_satisfied_existential(self):
        program = parse_program("p(?X) -> exists ?Y . q(?X, ?Y).")
        crule = compile_rule(program.rules[0])
        instance = Instance([Atom("p", (a,)), Atom("q", (a, Null("_:w0")))])
        assert crule.head_satisfied({X: a}, instance)
        assert not crule.head_satisfied({X: b}, instance)


class TestInstanceSnapshot:
    def test_snapshot_is_frozen_against_additions(self):
        instance = Instance([Atom("p", (a,))])
        frozen = instance.snapshot()
        instance.add(Atom("p", (b,)))
        assert Atom("p", (a,)) in frozen
        assert Atom("p", (b,)) not in frozen
        assert len(frozen) == 1
        assert set(frozen) == {Atom("p", (a,))}
        assert list(frozen.matching(Atom("p", (X,)))) == [Atom("p", (a,))]

    def test_snapshot_with_predicate_and_predicates(self):
        instance = Instance([Atom("p", (a,)), Atom("q", (b,))])
        frozen = instance.snapshot()
        instance.add(Atom("r", (c,)))
        assert frozen.with_predicate("p") == {Atom("p", (a,))}
        assert frozen.predicates == {"p", "q"}


class TestBulkLoadAndStats:
    def test_bulk_load_counts_new_facts(self):
        instance = Instance()
        added = instance.bulk_load([Atom("p", (a,)), Atom("p", (a,)), Atom("p", (b,))])
        assert added == 2
        assert len(instance) == 2

    def test_bulk_load_rejects_variables(self):
        with pytest.raises(ValueError):
            Instance().bulk_load([Atom("p", (X,))])

    def test_database_bulk_load_rejects_nulls(self):
        with pytest.raises(ValueError, match="ground atoms"):
            Database().bulk_load([Atom("p", (Null("_:z"),))])

    def test_stats_count_added_facts(self):
        STATS.reset()
        Instance([Atom("p", (a,)), Atom("p", (b,))])
        assert STATS.facts_added == 2

    def test_discard_hides_fact_from_matching(self):
        instance = Instance([Atom("p", (a,)), Atom("p", (b,))])
        assert instance.discard(Atom("p", (a,)))
        assert list(instance.matching(Atom("p", (X,)))) == [Atom("p", (b,))]
        assert compile_body((Atom("p", (X,)),)).execute(instance).__next__()[X] == b
