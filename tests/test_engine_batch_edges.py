"""Edge-case properties of the column-at-a-time executor.

Targets the classic vectorised-executor failure modes one by one:

* self-joins and repeated variables (within one atom and across atoms),
* negation probes over empty and singleton buckets,
* snapshot isolation — a batch lookup must not see rows appended to the
  instance after the ``snapshot()`` was taken, and
* degenerate shapes: empty bodies, unmatched predicates, prebound seeds.
"""

import random

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Instance
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.terms import Constant, Variable
from repro.engine.mode import execution_mode
from repro.engine.plan import compile_body, compile_rule
from repro.engine.reference import reference_match_atoms

V = Variable
C = Constant


def canonical(substitutions):
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in s.items())) for s in substitutions
    )


def assert_parity(atoms, instance, initial=None):
    atoms = tuple(atoms)
    prebound = frozenset(initial) if initial else frozenset()
    plan = compile_body(atoms, prebound)
    row_matches = list(plan.execute(instance, initial))
    batch_matches = plan.execute_batch(instance, initial)
    assert batch_matches == row_matches
    assert canonical(batch_matches) == canonical(
        reference_match_atoms(atoms, instance, initial)
    )
    return batch_matches


class TestRepeatedVariables:
    def setup_method(self):
        self.instance = Instance(
            [
                Atom("e", (C("a"), C("a"))),
                Atom("e", (C("a"), C("b"))),
                Atom("e", (C("b"), C("a"))),
                Atom("e", (C("b"), C("c"))),
                Atom("t", (C("a"), C("a"), C("a"))),
                Atom("t", (C("a"), C("b"), C("a"))),
                Atom("t", (C("b"), C("b"), C("c"))),
            ]
        )

    def test_self_loop_within_atom(self):
        matches = assert_parity([Atom("e", (V("X"), V("X")))], self.instance)
        assert len(matches) == 1  # only e(a, a)

    def test_triple_repeat_within_atom(self):
        matches = assert_parity([Atom("t", (V("X"), V("X"), V("X")))], self.instance)
        assert len(matches) == 1  # only t(a, a, a)

    def test_first_and_third_repeat(self):
        matches = assert_parity([Atom("t", (V("X"), V("Y"), V("X")))], self.instance)
        assert len(matches) == 2  # t(a,a,a), t(a,b,a)

    def test_self_join_across_atoms(self):
        assert_parity(
            [Atom("e", (V("X"), V("Y"))), Atom("e", (V("Y"), V("X")))], self.instance
        )

    def test_same_atom_twice(self):
        # Both atoms map to the same facts; each pair of supporting facts is
        # one homomorphism, so multiplicities must survive batching.
        matches = assert_parity(
            [Atom("e", (V("X"), V("Y"))), Atom("e", (V("X"), V("Y")))], self.instance
        )
        singles = assert_parity([Atom("e", (V("X"), V("Y")))], self.instance)
        assert len(matches) == len(singles)

    def test_diamond_self_join(self):
        assert_parity(
            [
                Atom("e", (V("X"), V("Y"))),
                Atom("e", (V("X"), V("Z"))),
                Atom("e", (V("Y"), V("W"))),
                Atom("e", (V("Z"), V("W"))),
            ],
            self.instance,
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_repeated_variable_patterns(self, seed):
        rng = random.Random(seed)
        constants = [C(f"c{i}") for i in range(4)]
        facts = [
            Atom("t", tuple(rng.choice(constants) for _ in range(3)))
            for _ in range(60)
        ]
        instance = Instance(facts)
        variables = [V("X"), V("Y")]
        for _ in range(8):
            body = tuple(
                Atom("t", tuple(rng.choice(variables) for _ in range(3)))
                for _ in range(rng.randint(1, 2))
            )
            assert_parity(body, instance)


class TestNegationBuckets:
    def evaluate_both(self, program_text, database):
        program = parse_program(program_text)
        results = {}
        for mode in ("row", "batch"):
            with execution_mode(mode):
                results[mode] = list(SemiNaiveEvaluator(program).evaluate(database))
        assert results["row"] == results["batch"]
        return set(results["batch"])

    def test_negation_over_empty_bucket(self):
        # ``q`` has no facts at all: every p(X) passes the negation.
        result = self.evaluate_both(
            "p(?X), not q(?X) -> r(?X).",
            [Atom("p", (C("a"),)), Atom("p", (C("b"),))],
        )
        assert Atom("r", (C("a"),)) in result
        assert Atom("r", (C("b"),)) in result

    def test_negation_over_singleton_bucket(self):
        result = self.evaluate_both(
            "p(?X), not q(?X) -> r(?X).",
            [Atom("p", (C("a"),)), Atom("p", (C("b"),)), Atom("q", (C("a"),))],
        )
        assert Atom("r", (C("a"),)) not in result
        assert Atom("r", (C("b"),)) in result

    def test_negation_on_binary_with_shared_key(self):
        # Rows agreeing on the negation key must share the memoised verdict
        # without leaking it to rows with a different key.
        result = self.evaluate_both(
            "e(?X, ?Y), not blocked(?X) -> ok(?X, ?Y).",
            [
                Atom("e", (C("a"), C("b"))),
                Atom("e", (C("a"), C("c"))),
                Atom("e", (C("d"), C("b"))),
                Atom("blocked", (C("a"),)),
            ],
        )
        assert Atom("ok", (C("d"), C("b"))) in result
        assert not any(
            atom.predicate == "ok" and atom.terms[0] == C("a") for atom in result
        )

    def test_derived_negation_stays_stratified(self):
        result = self.evaluate_both(
            """
            e(?X, ?Y) -> reach(?X, ?Y).
            reach(?X, ?Y), e(?Y, ?Z) -> reach(?X, ?Z).
            e(?X, ?Y), not reach(?Y, ?X) -> oneway(?X, ?Y).
            """,
            [
                Atom("e", (C("a"), C("b"))),
                Atom("e", (C("b"), C("a"))),
                Atom("e", (C("b"), C("c"))),
            ],
        )
        assert Atom("oneway", (C("b"), C("c"))) in result
        assert Atom("oneway", (C("a"), C("b"))) not in result


class TestSnapshotIsolation:
    def test_batch_lookup_does_not_see_later_rows(self):
        instance = Instance(
            [Atom("e", (C("a"), C("b"))), Atom("e", (C("b"), C("c")))]
        )
        snapshot = instance.snapshot()
        plan = compile_body((Atom("e", (V("X"), V("Y"))),))
        before = plan.execute_batch(snapshot)
        assert len(before) == 2
        instance.add(Atom("e", (C("c"), C("d"))))
        instance.add(Atom("e", (C("a"), C("z"))))
        after = plan.execute_batch(snapshot)
        assert after == before  # frozen prefix: appended rows invisible
        live = plan.execute_batch(instance)
        assert len(live) == 4

    def test_batch_probe_respects_snapshot_caps_per_bucket(self):
        instance = Instance([Atom("e", (C("a"), C("b")))])
        snapshot = instance.snapshot()
        # Appending to the *same* postings bucket (same bound term 'a') after
        # the snapshot must not extend the snapshot's candidate set.
        instance.add(Atom("e", (C("a"), C("c"))))
        plan = compile_body((Atom("e", (C("a"), V("Y"))),))
        matches = plan.execute_batch(snapshot)
        assert [m[V("Y")] for m in matches] == [C("b")]

    def test_negation_probe_against_snapshot_is_frozen(self):
        instance = Instance([Atom("p", (C("a"),)), Atom("p", (C("b"),))])
        snapshot = instance.snapshot()
        instance.add(Atom("q", (C("a"),)))  # appended after the freeze
        crule = compile_rule(parse_program("p(?X), not q(?X) -> r(?X).").rules[0])
        batches = crule.trigger_row_batches(instance, None, snapshot)
        matched = [row for _, rows in batches for row in rows]
        # q(a) is invisible through the snapshot, so nothing is blocked.
        assert len(matched) == 2

    def test_stratum_reference_sees_lower_strata_not_later_appends(self):
        # ``q`` sits in a stratum strictly below ``r``'s rule, so the frozen
        # reference taken before r's stratum *does* contain the derived q(a)
        # and r(a) must not fire — in either mode.  (The frozen-prefix
        # direction — appends after the snapshot stay invisible — is pinned
        # by the other tests in this class.)
        program = parse_program(
            """
            p(?X) -> q(?X).
            p(?X), not q(?X) -> r(?X).
            """
        )
        database = [Atom("p", (C("a"),))]
        results = {}
        for mode in ("row", "batch"):
            with execution_mode(mode):
                results[mode] = list(SemiNaiveEvaluator(program).evaluate(database))
        assert results["row"] == results["batch"]
        assert Atom("q", (C("a"),)) in set(results["batch"])
        assert Atom("r", (C("a"),)) not in set(results["batch"])


class TestDegenerateShapes:
    def test_unmatched_predicate(self):
        instance = Instance([Atom("e", (C("a"), C("b")))])
        plan = compile_body((Atom("missing", (V("X"),)),))
        assert plan.execute_batch(instance) == []

    def test_unmatched_constant_bucket(self):
        instance = Instance([Atom("e", (C("a"), C("b")))])
        plan = compile_body((Atom("e", (C("z"), V("Y"))),))
        assert plan.execute_batch(instance) == []

    def test_empty_body_with_prebound_seed(self):
        instance = Instance([Atom("e", (C("a"), C("b")))])
        body = (Atom("e", (V("X"), V("Y"))),)
        assert_parity(body, instance, initial={V("X"): C("a")})
        assert_parity(body, instance, initial={V("X"): C("z")})

    def test_all_constant_atom(self):
        instance = Instance([Atom("e", (C("a"), C("b")))])
        hit = assert_parity((Atom("e", (C("a"), C("b"))),), instance)
        miss = assert_parity((Atom("e", (C("b"), C("a"))),), instance)
        assert len(hit) == 1 and len(miss) == 0

    def test_tombstoned_rows_are_skipped(self):
        instance = Instance(
            [Atom("e", (C("a"), C("b"))), Atom("e", (C("a"), C("c")))]
        )
        instance.discard(Atom("e", (C("a"), C("b"))))
        body = (Atom("e", (V("X"), V("Y"))),)
        matches = assert_parity(body, instance)
        assert [m[V("Y")] for m in matches] == [C("c")]
