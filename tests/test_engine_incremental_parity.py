"""Incremental determinism: DeltaSession vs cold evaluation, byte for byte.

The streaming subsystem (:mod:`repro.engine.incremental`) promises that a
:class:`~repro.engine.incremental.DeltaSession` fed a database in arbitrary
batches materialises the *same* result as one cold evaluation of the
accumulated database.  This suite pins the contract differentially, at the
strength each fragment supports:

* **Existential-free programs** (semi-naive path, with stratified negation):
  the session's facts are **byte-identical** — ``sorted_atoms()`` equality —
  to the cold run, on a fuzz corpus of random stratified Datalog¬ programs
  under random batch schedules, in all three execution modes.  Negation
  exercises both incremental regimes: monotone strata are continued from the
  delta, strata whose negation references grew are re-run (facts must be
  *withdrawn* when new EDB kills their support).
* **Existential programs** (restricted chase path): with the session's
  content-addressed deterministic nulls, runs that fire the same triggers
  agree byte-identically, null labels included; where the restricted chase
  is genuinely order-dependent (a cold run satisfies a head early and skips
  the trigger the incremental run already fired), both results are universal
  models, so the **ground fact set and every query answer** still agree —
  asserted on a workload built to hit exactly that case.
* **Modes and replay**: one push schedule produces atom-for-atom identical
  instances and identical gated counters across ``row``, ``batch``, and the
  forced 2-worker ``parallel`` executor, and replaying a schedule is
  counter-for-counter deterministic.  (Counters are *not* compared against
  the cold run: a continuation enumerates matches through pivot plans where
  the cold run's naive round enumerates them once, so trigger counts
  legitimately differ while results may not — see ``docs/architecture.md``.)
"""

import itertools
import random

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine
from repro.datalog.parser import parse_program
from repro.datalog.semantics import INCONSISTENT, StratifiedSemantics
from repro.datalog.terms import Constant, Null
from repro.engine.incremental import DeltaSession, cold_equivalent
from repro.engine.mode import execution_mode
from repro.engine.parallel import parallel_threshold_override, shutdown_pool
from repro.engine.stats import STATS
from test_engine_batch_parity import random_datalog_program, random_instance

WORKERS = 2

TC_PROGRAM = """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
"""

TC_NEGATION_PROGRAM = TC_PROGRAM + """
    knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
"""

ANCESTOR_CHASE_PROGRAM = """
    person(?X) -> exists ?Y . parent(?X, ?Y).
    parent(?X, ?Y) -> ancestor(?X, ?Y).
    ancestor(?X, ?Y), parent(?Y, ?Z) -> ancestor(?X, ?Z).
"""


@pytest.fixture(scope="module", autouse=True)
def stop_pool_after_module():
    yield
    shutdown_pool()


def person(name):
    return Atom("person", (Constant(name),))


def edge(a, b):
    return Atom("triple", (Constant(a), Constant("knows"), Constant(b)))


def run_session(program, initial, batches, **kwargs):
    """Build a session, push every batch, return it (caller closes)."""
    session = DeltaSession(program, initial, **kwargs)
    for batch in batches:
        session.push(batch)
    return session


def split_schedule(rng, facts, n_batches):
    """Randomly split ``facts`` into an initial load plus ``n_batches``."""
    facts = list(facts)
    rng.shuffle(facts)
    cuts = sorted(rng.randint(0, len(facts)) for _ in range(n_batches))
    pieces = []
    previous = 0
    for cut in cuts + [len(facts)]:
        pieces.append(facts[previous:cut])
        previous = cut
    return pieces[0], pieces[1:]


# ---------------------------------------------------------------------------
# Existential-free parity: byte-identical to the cold run
# ---------------------------------------------------------------------------


class TestSemiNaiveParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_fuzzed_stratified_programs(self, seed):
        rng = random.Random(1000 + seed)
        instance, constants = random_instance(rng, n_constants=5, n_facts=60)
        program = random_datalog_program(rng, constants)
        initial, batches = split_schedule(rng, instance, rng.randint(1, 4))
        session = run_session(program, initial, batches)
        cold = cold_equivalent(session)
        assert session.instance.sorted_atoms() == cold.sorted_atoms()
        session.close()

    def test_single_fact_trickle_matches_cold(self):
        edges = [edge(f"n{i}", f"n{i + 1}") for i in range(12)]
        session = run_session(TC_PROGRAM, edges[:4], [[e] for e in edges[4:]])
        cold = cold_equivalent(session)
        assert session.instance.sorted_atoms() == cold.sorted_atoms()
        # Single-stratum program: every push is a pure continuation.
        result = session.push([edge("z0", "z1")])
        assert result.rebuilt_from is None
        session.close()

    def test_negation_withdraws_facts_on_rerun(self):
        session = DeltaSession(TC_NEGATION_PROGRAM, [edge("a", "b")])
        assert session.query("oneway") == {(Constant("a"), Constant("b"))}
        result = session.push([edge("b", "a")])
        assert result.rebuilt_from is not None
        assert session.query("oneway") == frozenset()
        assert (
            session.instance.sorted_atoms()
            == cold_equivalent(session).sorted_atoms()
        )
        session.close()

    @pytest.mark.parametrize("seed", range(4))
    def test_negation_fuzz_over_batch_schedules(self, seed):
        # The same program and facts under different schedules must all
        # converge to the cold result, whatever mix of continuations and
        # stratum re-runs each schedule takes.
        rng = random.Random(2000 + seed)
        instance, constants = random_instance(rng, n_constants=4, n_facts=50)
        program = random_datalog_program(rng, constants)
        cold = cold_equivalent(program, list(instance), engine="seminaive")
        for _ in range(3):
            initial, batches = split_schedule(rng, instance, rng.randint(2, 5))
            session = run_session(program, initial, batches)
            assert session.instance.sorted_atoms() == cold.sorted_atoms()
            session.close()

    def test_multi_stratum_negation_chain(self):
        program = """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y), not blocked(?X) -> active(?X, ?Y).
            active(?X, ?Y), not trusted(?Y) -> flagged(?X, ?Y).
            knows(?X, ?X) -> blocked(?X).
            knows(?X, trust) -> trusted(?X).
        """
        facts = [edge("a", "b"), edge("b", "c"), edge("c", "trust")]
        session = DeltaSession(program, facts[:1])
        for fact in facts[1:]:
            session.push([fact])
        assert (
            session.instance.sorted_atoms()
            == cold_equivalent(session).sorted_atoms()
        )
        # A self-loop blocks `a`: stratum 1 and above must be re-run.
        result = session.push([edge("a", "a")])
        assert result.rebuilt_from is not None
        assert (
            session.instance.sorted_atoms()
            == cold_equivalent(session).sorted_atoms()
        )
        session.close()

    def test_push_affecting_only_top_stratum_never_rebuilds(self):
        program = """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            audit(?X), not knows(?X, ?X) -> clean(?X).
        """
        session = DeltaSession(program, [edge("a", "b")])
        # `audit` only feeds the top stratum; nothing above it can need a
        # re-run, so this must be a pure continuation.
        result = session.push([Atom("audit", (Constant("a"),))])
        assert result.rebuilt_from is None
        assert session.query("clean") == {(Constant("a"),)}
        assert (
            session.instance.sorted_atoms()
            == cold_equivalent(session).sorted_atoms()
        )
        session.close()

    def test_duplicate_and_derived_pushes_are_noops(self):
        session = DeltaSession(TC_PROGRAM, [edge("a", "b"), edge("b", "c")])
        size = len(session)
        derived = Atom("connected", (Constant("a"), Constant("c")))
        assert derived in session
        result = session.push([edge("a", "b"), derived])
        assert result.new_edb == 0 and result.derived == 0
        assert len(session) == size
        assert (
            session.instance.sorted_atoms()
            == cold_equivalent(session).sorted_atoms()
        )
        session.close()


# ---------------------------------------------------------------------------
# Chase parity: stable nulls, universal-model agreement
# ---------------------------------------------------------------------------


class TestChaseParity:
    def test_existential_chain_byte_identical(self):
        people = [person(f"p{i}") for i in range(10)]
        session = run_session(
            ANCESTOR_CHASE_PROGRAM, people[:3], [[p] for p in people[3:]]
        )
        cold = cold_equivalent(session)
        # Content-addressed nulls: labels agree between the incremental and
        # the cold run, so plain sorted-atom equality covers the nulls too.
        assert session.instance.sorted_atoms() == cold.sorted_atoms()
        assert len(session.instance.nulls()) == len(people)
        session.close()

    def test_deterministic_null_labels_are_schedule_independent(self):
        people = [person(f"p{i}") for i in range(6)]
        one_shot = DeltaSession(ANCESTOR_CHASE_PROGRAM, people)
        trickled = run_session(
            ANCESTOR_CHASE_PROGRAM, people[:1], [[p] for p in people[1:]]
        )
        assert one_shot.instance.sorted_atoms() == trickled.instance.sorted_atoms()
        one_shot.close()
        trickled.close()

    def test_presatisfied_heads_agree_on_ground_part_and_answers(self):
        # A cold run sees parent(p0, q) up front and skips the existential
        # for p0; the incremental run invented a null for p0 before the
        # parent edge arrived.  The instances legitimately differ on null
        # atoms — but both are universal models, so ground facts and query
        # answers must agree exactly.
        program = ANCESTOR_CHASE_PROGRAM + """
            parent(?X, ?Y) -> haschild(?X).
        """
        session = DeltaSession(program, [person("p0"), person("p1")])
        session.push([Atom("parent", (Constant("p0"), Constant("q")))])
        cold = cold_equivalent(session)
        assert (
            session.instance.ground_part().sorted_atoms()
            == cold.ground_part().sorted_atoms()
        )
        for predicate in ("haschild", "ancestor", "parent", "person"):
            cold_answers = frozenset(
                tuple(a.terms)
                for a in cold.with_predicate(predicate)
                if a.is_ground
            )
            assert session.query(predicate) == cold_answers
        session.close()

    def test_stratified_chase_with_negation_rerun(self):
        program = """
            person(?X) -> exists ?Y . parent(?X, ?Y).
            parent(?X, ?Y) -> haschild(?X).
            person(?X), not adopted(?X) -> biological(?X).
            flag(?X, adopted) -> adopted(?X).
        """
        session = DeltaSession(program, [person("p0"), person("p1")])
        assert session.query("biological") == {
            (Constant("p0"),),
            (Constant("p1"),),
        }
        result = session.push([Atom("flag", (Constant("p0"), Constant("adopted")))])
        assert result.rebuilt_from is not None
        assert session.query("biological") == {(Constant("p1"),)}
        cold = cold_equivalent(session)
        # The rebuild re-invents content-addressed nulls, so even the null
        # atoms come back byte-identical to the cold run here.
        assert session.instance.sorted_atoms() == cold.sorted_atoms()
        session.close()

    def test_step_budget_is_per_push_and_totals_accumulate(self):
        engine = ChaseEngine(max_steps=4, on_limit="stop", deterministic_nulls=True)
        session = DeltaSession(
            ANCESTOR_CHASE_PROGRAM, [person("p0")], engine="chase", chase_engine=engine
        )
        after_initial = session._chase_state.steps
        # One oversized push is capped at the per-push budget (4 of its 7
        # wanted triggers) — and the truncation is *reported*, not silent:
        # the materialisation is an under-approximation from here on.
        result = session.push([person(f"p{i}") for i in range(1, 8)])
        assert session._chase_state.steps == after_initial + 4
        assert not result.completed
        assert "max_steps" in result.limit_reason
        # ...but the budget never starves later pushes: a long-lived stream
        # gets a fresh allowance per batch (under a cumulative budget this
        # push would fire nothing), and the lifetime total keeps
        # accumulating on the shared state.
        after_capped = session._chase_state.steps
        before = len(session.facts("parent"))
        session.push([person("q0")])
        assert len(session.facts("parent")) > before
        assert session._chase_state.steps > after_capped
        session.close()

    def test_oblivious_chase_is_refused(self):
        with pytest.raises(ValueError, match="restricted"):
            DeltaSession(
                ANCESTOR_CHASE_PROGRAM,
                [person("p0")],
                engine="chase",
                chase_engine=ChaseEngine(restricted=False),
            )

    def test_delta_session_factory_on_stratified_semantics(self):
        program = parse_program(ANCESTOR_CHASE_PROGRAM)
        semantics = StratifiedSemantics(
            program, ChaseEngine(deterministic_nulls=True)
        )
        session = semantics.delta_session([person("p0")])
        session.push([person("p1")])
        cold = semantics.materialise([person("p0"), person("p1")])
        assert session.instance.sorted_atoms() == cold.sorted_atoms()
        session.close()


# ---------------------------------------------------------------------------
# Modes, replay determinism, constraints, input forms
# ---------------------------------------------------------------------------


def run_three_modes(fn):
    """fn() per mode (parallel forced through 2 workers); {mode: (result, counters)}."""
    results = {}
    for mode, workers, threshold in (
        ("row", None, None),
        ("batch", None, None),
        ("parallel", WORKERS, 0),
    ):
        with execution_mode(mode, workers):
            Null._counter = itertools.count()
            STATS.reset()
            if threshold is None:
                results[mode] = (fn(), STATS.gated())
            else:
                with parallel_threshold_override(threshold):
                    results[mode] = (fn(), STATS.gated())
    return results


class TestModesAndDeterminism:
    def test_three_mode_parity_seminaive_stream(self):
        edges = [edge(f"n{i % 7}", f"n{(i * 3 + 1) % 7}") for i in range(20)]

        def stream():
            session = run_session(
                TC_NEGATION_PROGRAM, edges[:6], [edges[6:12], edges[12:]]
            )
            atoms = list(session.instance)
            session.close()
            return atoms

        outcome = run_three_modes(stream)
        assert outcome["row"][0] == outcome["batch"][0] == outcome["parallel"][0]
        assert outcome["row"][1] == outcome["batch"][1] == outcome["parallel"][1]

    def test_three_mode_parity_chase_stream(self):
        people = [person(f"p{i}") for i in range(9)]

        def stream():
            session = run_session(
                ANCESTOR_CHASE_PROGRAM, people[:3], [people[3:6], people[6:]]
            )
            atoms = list(session.instance)
            session.close()
            return atoms

        outcome = run_three_modes(stream)
        # Atom-for-atom equality covers insertion order and null labels.
        assert outcome["row"][0] == outcome["batch"][0] == outcome["parallel"][0]
        assert outcome["row"][1] == outcome["batch"][1] == outcome["parallel"][1]

    def test_parallel_continuations_actually_dispatch(self):
        edges = [edge(f"a{i}", f"a{i + 1}") for i in range(40)]
        with execution_mode("parallel", WORKERS), parallel_threshold_override(0):
            STATS.reset()
            session = run_session(TC_PROGRAM, edges[:20], [edges[20:30], edges[30:]])
            assert STATS.parallel_tasks > 0
            with execution_mode("batch"):
                expected = cold_equivalent(session)
            assert session.instance.sorted_atoms() == expected.sorted_atoms()
            session.close()

    def test_replay_is_counter_deterministic(self):
        edges = [edge(f"n{i}", f"n{i + 1}") for i in range(15)]

        def stream():
            STATS.reset()
            session = run_session(TC_NEGATION_PROGRAM, edges[:5], [[e] for e in edges[5:]])
            gated = STATS.gated()
            atoms = session.instance.sorted_atoms()
            session.close()
            return atoms, gated

        first_atoms, first_counters = stream()
        second_atoms, second_counters = stream()
        assert first_atoms == second_atoms
        assert first_counters == second_counters

    def test_delta_window_memo_survives_delta_id_reuse(self):
        # Regression (latent since the sharded executor landed, exposed by
        # streaming's long runs of equal-sized deltas): delta instances are
        # transient, so a freed delta's address can be recycled by a later
        # same-length delta.  The session's window memo must not serve the
        # stale ordinal range — the parent's counter is part of the key.
        import gc

        from repro.datalog.database import Instance
        from repro.engine.parallel import ParallelSession

        facts = [edge(f"m{i}", f"m{i + 1}") for i in range(8)]
        instance = Instance(facts[:4])
        session = ParallelSession(instance, [], WORKERS)
        first = Instance()
        for atom in facts[:4]:
            first.add_fact(atom)
        assert session._delta_window(first) == (0, 4)
        address = id(first)
        del first
        gc.collect()
        for atom in facts[4:]:
            instance.add_fact(atom)
        second = Instance()
        for atom in facts[4:]:
            second.add_fact(atom)
        # Same length; frequently the same recycled address.  Either way the
        # memo must revalidate and report the new window.
        assert session._delta_window(second) == (4, 8)
        if id(second) == address:  # the hazardous case actually occurred
            assert session._window_cache[3] == (4, 8)

    def test_constraint_violation_surfaces_after_push(self):
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?X) -> false.
            """
        )
        session = DeltaSession(program, [edge("a", "b")])
        assert session.result() is not INCONSISTENT
        result = session.push([edge("c", "c")])
        assert not result.consistent
        assert session.result() is INCONSISTENT
        session.close()

    def test_input_forms_and_validation(self):
        from repro.rdf.graph import Triple

        session = DeltaSession(TC_PROGRAM, [("a", "knows", "b")])
        session.push([Triple("b", "knows", "c"), edge("c", "d")])
        assert len(session.facts("knows")) == 3
        with pytest.raises(ValueError, match="ground"):
            session.push([Atom("knows", (Constant("x"), Null("_:b")))])
        with pytest.raises(TypeError, match="streamed facts"):
            session.push(["not-a-fact"])
        closed = session
        closed.close()
        with pytest.raises(RuntimeError, match="closed"):
            closed.push([edge("x", "y")])
