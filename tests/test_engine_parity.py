"""Differential tests: compiled join plans vs the legacy interpretive matcher.

The compiled core (:mod:`repro.engine.plan`) must produce *exactly* the
substitution sets of the seed's backtracking matcher, which is preserved
verbatim as :func:`repro.engine.reference.reference_match_atoms`.  These
tests compare the two across the ``workloads/`` generators — random RDF
graphs, chain ontologies, and k-clique reductions — and additionally check
the engines end-to-end (atom-for-atom equal instances) on programs with
negation and existentials, where a naive fixpoint built on the reference
matcher serves as the oracle.
"""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.chase import ChaseEngine, match_atoms
from repro.datalog.database import Instance
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.stratification import partition_by_stratum, stratify
from repro.datalog.terms import Constant, Variable
from repro.engine.reference import reference_match_atoms, reference_satisfies_some
from repro.reductions.clique import clique_database, clique_program
from repro.workloads.graphs import random_rdf_graph, transport_network
from repro.workloads.ontologies import chain_ontology_graph, university_graph


def canonical(substitutions):
    """Order-insensitive, hashable form of a substitution iterator."""
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in s.items())) for s in substitutions
    )


def assert_same_matches(atoms, instance, initial=None):
    compiled = canonical(match_atoms(atoms, instance, initial))
    reference = canonical(reference_match_atoms(atoms, instance, initial))
    assert compiled == reference


def naive_stratified_fixpoint(program, database):
    """Oracle evaluator: naive iteration with the reference matcher only."""
    stratification = stratify(program.ex())
    strata = partition_by_stratum(program.ex(), stratification)
    instance = Instance(database)
    for rules in strata:
        if not rules:
            continue
        reference = Instance(instance)  # frozen copy of the lower strata
        changed = True
        while changed:
            changed = False
            for rule in rules:
                for sub in list(reference_match_atoms(rule.body_positive, instance)):
                    if rule.body_negative and reference_satisfies_some(
                        rule.body_negative, reference, sub
                    ):
                        continue
                    for head_atom in rule.head:
                        if instance.add(head_atom.apply(sub)):
                            changed = True
    return instance


V = Variable
TRIPLE = "triple"


class TestMatchParityOnWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_rdf_graph_patterns(self, seed):
        graph = random_rdf_graph(n_triples=120, n_nodes=25, seed=seed)
        instance = graph.to_database()
        knows, works = Constant("knows"), Constant("worksFor")
        bodies = [
            (Atom(TRIPLE, (V("X"), knows, V("Y"))),),
            (
                Atom(TRIPLE, (V("X"), knows, V("Y"))),
                Atom(TRIPLE, (V("Y"), knows, V("Z"))),
            ),
            (
                Atom(TRIPLE, (V("X"), knows, V("Y"))),
                Atom(TRIPLE, (V("X"), works, V("W"))),
                Atom(TRIPLE, (V("Y"), works, V("W"))),
            ),
            # Repeated variable: self-loops.
            (Atom(TRIPLE, (V("X"), V("P"), V("X"))),),
        ]
        for body in bodies:
            assert_same_matches(body, instance)

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_chain_ontology_joins(self, n):
        instance = chain_ontology_graph(n).to_database()
        sub_class = Constant("rdfs:subClassOf")
        body = (
            Atom(TRIPLE, (V("A"), sub_class, V("B"))),
            Atom(TRIPLE, (V("B"), sub_class, V("C"))),
        )
        assert_same_matches(body, instance)

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3)])
    def test_clique_reduction_bodies(self, n, k):
        edges = [(f"v{i}", f"v{j}") for i in range(n) for j in range(i + 1, n)]
        instance = clique_database(edges, k)
        for rule in clique_program().rules:
            assert_same_matches(rule.body_positive, instance)

    def test_university_graph_with_seed_bindings(self):
        instance = university_graph(
            n_departments=1, students_per_department=4
        ).to_database()
        rdf_type = Constant("rdf:type")
        body = (Atom(TRIPLE, (V("X"), rdf_type, V("C"))),)
        classes = {s[V("C")] for s in reference_match_atoms(body, instance)}
        for cls in sorted(classes, key=str):
            assert_same_matches(body, instance, initial={V("C"): cls})

    def test_transport_network_paths(self):
        graph, _ = transport_network(8, n_services=2)
        instance = graph.to_database()
        part_of = Constant("partOf")
        body = (
            Atom(TRIPLE, (V("X"), part_of, V("Y"))),
            Atom(TRIPLE, (V("Y"), part_of, V("Z"))),
        )
        assert_same_matches(body, instance)
        # City links use per-edge service predicates: join through them too.
        body = (
            Atom(TRIPLE, (V("A"), V("S"), V("B"))),
            Atom(TRIPLE, (V("S"), part_of, V("O"))),
        )
        assert_same_matches(body, instance)


class TestEngineParity:
    def test_seminaive_equals_naive_oracle_with_negation(self):
        program = parse_program(
            """
            edge(?X, ?Y) -> node(?X), node(?Y).
            edge(?X, ?Y) -> reach(?X, ?Y).
            reach(?X, ?Y), edge(?Y, ?Z) -> reach(?X, ?Z).
            node(?X), node(?Y), not reach(?X, ?Y) -> unreachable(?X, ?Y).
            """
        )
        database = [
            Atom("edge", (Constant("a"), Constant("b"))),
            Atom("edge", (Constant("b"), Constant("c"))),
            Atom("edge", (Constant("d"), Constant("d"))),
        ]
        compiled = SemiNaiveEvaluator(program).evaluate(database)
        oracle = naive_stratified_fixpoint(program, database)
        assert compiled.to_set() == oracle.to_set()

    @pytest.mark.parametrize("seed", [0, 5])
    def test_seminaive_equals_oracle_on_random_graph(self, seed):
        graph = random_rdf_graph(n_triples=60, n_nodes=12, seed=seed)
        program = parse_program(
            """
            triple(?X, knows, ?Y) -> knows(?X, ?Y).
            knows(?X, ?Y) -> connected(?X, ?Y).
            connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
            knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
            """
        )
        database = graph.to_database()
        compiled = SemiNaiveEvaluator(program).evaluate(database)
        oracle = naive_stratified_fixpoint(program, database)
        assert compiled.to_set() == oracle.to_set()

    def test_restricted_chase_parity_on_existentials(self):
        program = parse_program(
            """
            person(?X) -> exists ?Y . parent(?X, ?Y), person(?Y).
            """
        )
        database = [
            Atom("person", (Constant("alice"),)),
            Atom("parent", (Constant("alice"), Constant("bob"))),
            Atom("person", (Constant("bob"),)),
        ]
        result = ChaseEngine(max_null_depth=2, on_limit="stop").chase(
            database, program
        )
        # alice's head is satisfiable (bob); bob triggers invention up to the
        # depth bound — the ground part must be exactly the input.
        assert result.instance.ground_part().to_set() == set(database)
        assert all(
            atom.predicate in {"person", "parent"} for atom in result.instance
        )

    def test_chase_negation_against_reference_instance(self):
        program = parse_program("p(?X), not q(?X) -> r(?X).")
        database = [Atom("p", (Constant("a"),)), Atom("p", (Constant("b"),))]
        reference = Instance(database + [Atom("q", (Constant("a"),))])
        result = ChaseEngine().chase(database, program, negation_reference=reference)
        assert Atom("r", (Constant("b"),)) in result.instance
        assert Atom("r", (Constant("a"),)) not in result.instance
