"""Tests for ground connections and the UGCP analysis (Lemmas 6.5 / 6.6)."""

from repro.analysis.ugcp import (
    ground_connection,
    is_series_bounded,
    max_ground_connection,
    mgc_series,
)
from repro.datalog.atoms import Atom
from repro.datalog.database import Instance
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Null
from repro.owl.entailment_rules import owl2ql_core_program
from repro.workloads.ontologies import chain_ontology_graph


class TestGroundConnection:
    def test_ground_connection_of_null(self):
        z = Null("_:z")
        instance = Instance(
            [
                Atom("p", (Constant("a"), z)),
                Atom("q", (z, Constant("b"), Constant("c"))),
                Atom("r", (Constant("d"), Constant("e"))),
            ]
        )
        assert ground_connection(z, instance) == {Constant("a"), Constant("b"), Constant("c")}

    def test_max_ground_connection_no_nulls(self):
        instance = Instance([Atom("p", (Constant("a"),))])
        assert max_ground_connection(instance) == 0

    def test_max_ground_connection_picks_largest(self):
        z1, z2 = Null("_:z1"), Null("_:z2")
        instance = Instance(
            [
                Atom("p", (Constant("a"), z1)),
                Atom("p", (Constant("b"), z2)),
                Atom("q", (z2, Constant("c"), Constant("d"))),
            ]
        )
        assert max_ground_connection(instance) == 3


class TestMgcSeries:
    def test_warded_encoding_of_lemma_65_is_unbounded(self):
        """mgc(n) grows with n for tau_owl2ql_core over the chain ontologies O_n."""
        program = owl2ql_core_program()
        series = mgc_series(
            program,
            lambda n: chain_ontology_graph(n).to_database(),
            sizes=[1, 2, 4, 6],
        )
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] > values[0]
        assert not is_series_bounded(series)

    def test_datalog_program_is_bounded(self):
        """A plain Datalog program never invents nulls, so mgc is constantly 0 (Lemma 6.6 spirit)."""
        program = parse_program(
            "triple(?X, ?Y, ?Z) -> t(?X, ?Z). t(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z)."
        )
        series = mgc_series(
            program,
            lambda n: chain_ontology_graph(n).to_database(),
            sizes=[1, 2, 4],
        )
        assert all(v == 0 for _, v in series)
        assert is_series_bounded(series)

    def test_nearly_frontier_guarded_program_is_bounded(self):
        """A frontier-guarded existential program keeps gc(z) bounded by the rule width."""
        program = parse_program("person(?X) -> exists ?Y . parent(?X, ?Y).")
        series = mgc_series(
            program,
            lambda n: Instance(
                Atom("person", (Constant(f"p{i}"),)) for i in range(n)
            ),
            sizes=[1, 3, 6],
        )
        assert all(v <= 1 for _, v in series)
        assert is_series_bounded(series)
