"""Tests for the top-level evaluate() API (plainness in practice)."""

import pytest

from repro.core.evaluation import eval_decision_problem, evaluate
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom
from repro.datalog.semantics import INCONSISTENT
from repro.datalog.terms import Constant
from repro.workloads.graphs import paper_transport_graph


def db(*facts):
    return Database([parse_atom(f) for f in facts])


TRANSPORT_PROGRAM = """
    triple(?X, partOf, transportService) -> ts(?X).
    triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
    ts(?T), triple(?X, ?T, ?Y) -> query(?X, ?Y).
    ts(?T), triple(?X, ?T, ?Z), query(?Z, ?Y) -> query(?X, ?Y).
"""


class TestEvaluate:
    def test_transport_reachability_from_section2(self):
        """The Section 2 query SPARQL 1.1 cannot express: reachability by transport services."""
        database = paper_transport_graph().to_database()
        answers = evaluate(TRANSPORT_PROGRAM, "query", database)
        pairs = {(a.value, b.value) for a, b in answers}
        assert ("Oxford", "Valladolid") in pairs
        assert ("Oxford", "London") in pairs
        assert len(pairs) == 6

    def test_recursive_output_predicate_is_wrapped(self):
        # "query" occurs in a rule body; evaluate() must still work.
        database = paper_transport_graph().to_database()
        assert evaluate(TRANSPORT_PROGRAM, "query", database)

    def test_program_object_accepted(self):
        from repro.datalog.parser import parse_program

        program = parse_program("e(?X, ?Y) -> answer(?X).")
        assert evaluate(program, "answer", db("e(a,b)")) == {(Constant("a"),)}

    def test_triq_fallback_for_non_warded_programs(self):
        from repro.reductions.clique import CLIQUE_RULES, clique_database

        database = clique_database([("a", "b"), ("b", "c"), ("a", "c")], 3)
        answers = evaluate(CLIQUE_RULES, "yes", database, output_arity=0)
        assert answers == {()}

    def test_rejects_programs_outside_triq(self):
        # Dangerous variables spread over two atoms that never co-occur.
        bad = """
            p(?X) -> exists ?Y . s(?X, ?Y).
            p(?X) -> exists ?Y . r(?X, ?Y).
            s(?X, ?Y), r(?X, ?Z) -> answer(?Y, ?Z).
        """
        with pytest.raises(ValueError):
            evaluate(bad, "answer", db("p(a)"))

    def test_inconsistent_database(self):
        program = "p(?X) -> answer(?X). p(?X), q(?X) -> false."
        assert evaluate(program, "answer", db("p(a)", "q(a)")) is INCONSISTENT

    def test_eval_decision_problem(self):
        program = "e(?X, ?Y) -> answer(?X)."
        assert eval_decision_problem(program, "answer", db("e(a,b)"), (Constant("a"),))
        assert not eval_decision_problem(program, "answer", db("e(a,b)"), (Constant("b"),))


class TestSection2Scenarios:
    def test_construct_style_output(self):
        """Rule (3): producing an RDF graph as output by writing into triple-shaped facts."""
        from repro.rdf.graph import database_to_graph
        from repro.workloads.graphs import section2_g1

        program = """
            triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> out(?X, name_author, ?Z).
        """
        database = section2_g1().to_database()
        answers = evaluate(program, "out", database)
        graph = database_to_graph(
            parse_atom(f'triple("{a.value}", {b.value}, "{c.value}")') for a, b, c in answers
        )
        assert len(graph) == 1

    def test_sameas_library_rules(self):
        """Adding the fixed owl:sameAs rules makes query (1) work over G4."""
        from repro.workloads.graphs import section2_g4

        program = """
            triple(?X, owl:sameAs, ?Y), triple(?Y, owl:sameAs, ?Z) -> triple2(?X, owl:sameAs, ?Z).
            triple(?X, ?Y, ?Z) -> triple2(?X, ?Y, ?Z).
            triple2(?X1, owl:sameAs, ?X2), triple2(?X1, ?U, ?Y1) -> triple2(?X2, ?U, ?Y1).
            triple2(?Y1, owl:sameAs, ?Y2), triple2(?X1, ?U, ?Y1) -> triple2(?X1, ?U, ?Y2).
            triple2(?Y, is_author_of, ?Z), triple2(?Y, name, ?X) -> answer(?X).
        """
        database = section2_g4().to_database()
        answers = evaluate(program, "answer", database)
        assert (Constant("Jeffrey Ullman"),) in answers

    def test_anonymisation_rules(self):
        """The subject-anonymisation program of Section 2 (global blank nodes)."""
        from repro.core.triqlite import TriQLiteQuery
        from repro.datalog.parser import parse_program
        from repro.workloads.graphs import section2_g1

        program = parse_program(
            """
            triple(?X, ?Y, ?Z) -> subj(?X).
            subj(?X) -> exists ?Y . bn(?X, ?Y).
            triple(?X, ?Y, ?Z), bn(?X, ?U) -> output(?U, ?Y, ?Z).
            """
        )
        query = TriQLiteQuery(program, "output", output_arity=3, validate=True)
        result = query.materialise(section2_g1().to_database())
        outputs = list(result.instance.with_predicate("output"))
        assert len(outputs) == 2
        # Both triples of G1 share the same subject, so they must share the same blank node.
        assert len({atom.terms[0] for atom in outputs}) == 1
        # Every output subject is anonymised (a labelled null).
        assert all(not atom.terms[0].is_ground for atom in outputs)
