"""Tests for mappings and the SPARQL algebra operators (Section 3.1)."""

from repro.datalog.terms import Constant, Variable
from repro.sparql.mappings import (
    EMPTY_MAPPING,
    Mapping,
    compatible,
    join,
    left_outer_join,
    minus,
    union,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestMapping:
    def test_construction_coerces_strings(self):
        mapping = Mapping({"?X": "a"})
        assert mapping[X] == a

    def test_domain(self):
        assert Mapping({X: a, Y: b}).domain == {X, Y}

    def test_restrict(self):
        mapping = Mapping({X: a, Y: b})
        assert mapping.restrict([X]) == Mapping({X: a})
        assert mapping.restrict([Z]) == EMPTY_MAPPING

    def test_merge(self):
        assert Mapping({X: a}).merge(Mapping({Y: b})) == Mapping({X: a, Y: b})

    def test_equality_and_hash(self):
        assert Mapping({X: a, Y: b}) == Mapping({Y: b, X: a})
        assert len({Mapping({X: a}), Mapping({X: a})}) == 1

    def test_get_and_contains(self):
        mapping = Mapping({X: a})
        assert X in mapping and Y not in mapping
        assert mapping.get(Y) is None


class TestCompatibility:
    def test_empty_mapping_compatible_with_everything(self):
        assert compatible(EMPTY_MAPPING, Mapping({X: a}))

    def test_agreeing_mappings(self):
        assert compatible(Mapping({X: a}), Mapping({X: a, Y: b}))

    def test_conflicting_mappings(self):
        assert not compatible(Mapping({X: a}), Mapping({X: b}))

    def test_disjoint_domains_are_compatible(self):
        assert compatible(Mapping({X: a}), Mapping({Y: b}))


class TestAlgebra:
    def test_join(self):
        left = {Mapping({X: a}), Mapping({X: b})}
        right = {Mapping({X: a, Y: c})}
        assert join(left, right) == {Mapping({X: a, Y: c})}

    def test_join_with_incompatible_is_empty(self):
        assert join({Mapping({X: a})}, {Mapping({X: b})}) == set()

    def test_union(self):
        assert union({Mapping({X: a})}, {Mapping({Y: b})}) == {
            Mapping({X: a}),
            Mapping({Y: b}),
        }

    def test_minus(self):
        left = {Mapping({X: a}), Mapping({X: b})}
        right = {Mapping({X: a, Y: c})}
        # Mapping X->a is compatible with the right mapping, X->b is not.
        assert minus(left, right) == {Mapping({X: b})}

    def test_left_outer_join(self):
        left = {Mapping({X: a}), Mapping({X: b})}
        right = {Mapping({X: a, Y: c})}
        assert left_outer_join(left, right) == {Mapping({X: a, Y: c}), Mapping({X: b})}

    def test_paper_identity(self):
        """Omega1 ⟕ Omega2 = (Omega1 ⋈ Omega2) ∪ (Omega1 ∖ Omega2)."""
        left = {Mapping({X: a}), Mapping({X: b, Y: c})}
        right = {Mapping({X: a, Z: c}), Mapping({Y: b})}
        assert left_outer_join(left, right) == union(join(left, right), minus(left, right))
