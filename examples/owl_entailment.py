"""SPARQL under the OWL 2 QL core entailment regime (Sections 5.2-5.3).

The example builds the paper's animal/eats ontology, evaluates the graph
pattern ``(?X, eats, _:B)`` under

* the plain SPARQL semantics (no reasoning — empty answer),
* the OWL 2 QL core direct-semantics entailment regime with the active-domain
  restriction (⟦·⟧^U — still empty, the witness is anonymous),
* the natural semantics without the active-domain restriction (⟦·⟧^All — dog).

It then runs a few queries against a larger university-style ontology,
illustrating that the fixed rule library ``tau_owl2ql_core`` is reused
unchanged for every new query.

Run with::

    python examples/owl_entailment.py
"""

from repro.owl.model import Ontology, inverse, some
from repro.owl.rdf_mapping import ontology_to_graph
from repro.sparql.evaluator import evaluate_pattern
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import evaluate_under_entailment
from repro.workloads.ontologies import university_ontology

# ---------------------------------------------------------------------------
# 1. The animal ontology of Section 5.2 / 5.3.
# ---------------------------------------------------------------------------

animals = Ontology()
animals.assert_class("animal", "dog")
animals.sub_class("animal", some("eats"))
animals.sub_class(some(inverse("eats")), "plant_material")
graph = ontology_to_graph(animals)

QUERY = parse_sparql("SELECT ?X WHERE { ?X eats _:B }")

print("plain SPARQL:        ", evaluate_pattern(QUERY.algebra(), graph))
print("entailment (U):      ", evaluate_under_entailment(QUERY, graph, "U"))
print("entailment (All):    ", evaluate_under_entailment(QUERY, graph, "All"))

HERBIVORE_QUERY = parse_sparql(
    "SELECT ?X WHERE { ?X eats _:B . _:B rdf:type plant_material }"
)
print("herbivores (U):      ", evaluate_under_entailment(HERBIVORE_QUERY, graph, "U"))
print("herbivores (All):    ", evaluate_under_entailment(HERBIVORE_QUERY, graph, "All"))

# ---------------------------------------------------------------------------
# 2. A university-style OWL 2 QL core ontology: the same fixed rule library
#    answers every query, no per-query ontology encoding needed.
# ---------------------------------------------------------------------------

university = ontology_to_graph(
    university_ontology(n_departments=2, students_per_department=6)
)

for text in (
    "SELECT ?X WHERE { ?X rdf:type Person }",
    "SELECT ?X WHERE { ?X rdf:type Faculty }",
    "SELECT ?X WHERE { ?X memberOf ?Y }",
    "SELECT ?X WHERE { ?X involvedIn _:B }",
):
    answers = evaluate_under_entailment(parse_sparql(text), university, "U")
    print(f"{text}\n  -> {len(answers)} answers")
