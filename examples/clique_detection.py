"""Example 4.3: deciding k-cliques with a TriQ 1.0 query.

The program is fixed (per k); only the database grows with the graph.  This
is the paper's evidence that TriQ 1.0 can express inherently expensive
queries — evaluation materialises the full tree of ``n^k`` mappings, which is
why the language is ExpTime-complete in data complexity (Theorem 4.4).

Run with::

    python examples/clique_detection.py
"""

import time

from repro.reductions.clique import (
    contains_clique,
    contains_clique_bruteforce,
)
from repro.workloads.graphs import random_undirected_graph

print("k-clique detection via the Example 4.3 TriQ 1.0 query")
print(f"{'n':>3} {'p':>5} {'k':>3} {'TriQ':>6} {'brute':>6} {'seconds':>9}")

for n, probability in [(4, 0.5), (5, 0.5), (5, 0.8), (6, 0.4)]:
    edges = random_undirected_graph(n, probability, seed=n)
    for k in (2, 3):
        start = time.perf_counter()
        found = contains_clique(edges, k)
        elapsed = time.perf_counter() - start
        reference = contains_clique_bruteforce(edges, k)
        assert found == reference, "the reduction must agree with brute force"
        print(f"{n:>3} {probability:>5.2f} {k:>3} {str(found):>6} {str(reference):>6} {elapsed:>9.3f}")

print("\nThe timings grow quickly with k and n: that blow-up is Theorem 4.4 in action.")
