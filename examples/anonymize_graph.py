"""Anonymising the subjects of an RDF graph (Section 2).

The paper's three-rule program replaces every URI in subject position by a
blank node, using the *same* blank node for every occurrence of the same URI —
something the local blank-node semantics of SPARQL's CONSTRUCT cannot do.
The program is a TriQ-Lite 1.0 query, so it runs on the polynomial warded
engine.

Run with::

    python examples/anonymize_graph.py
"""

from repro.core.triqlite import TriQLiteQuery
from repro.datalog.parser import parse_program
from repro.rdf.graph import RDFGraph, Triple
from repro.rdf.parser import serialize_ntriples
from repro.workloads.graphs import section2_g2

ANONYMIZE = parse_program(
    """
    triple(?X, ?Y, ?Z) -> subj(?X).
    subj(?X) -> exists ?Y . bn(?X, ?Y).
    triple(?X, ?Y, ?Z), bn(?X, ?U) -> output(?U, ?Y, ?Z).
    """
)

source = section2_g2()
print("source graph:")
print(serialize_ntriples(source))

query = TriQLiteQuery(ANONYMIZE, "output", output_arity=3)
result = query.materialise(source.to_database())

anonymised = RDFGraph()
for atom in result.instance.with_predicate("output"):
    anonymised.add(Triple(*atom.terms))

print("anonymised graph (same blank node for every occurrence of a subject):")
print(serialize_ntriples(anonymised))

subjects = {triple.subject for triple in anonymised}
print(f"{len(source.subjects())} distinct subjects became {len(subjects)} blank nodes")
