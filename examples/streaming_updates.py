"""Streaming updates: keep a materialisation fresh with a ``DeltaSession``.

The batch engines recompute the whole fixpoint per run; a
:class:`~repro.engine.incremental.DeltaSession` materialises once and then
*resumes* evaluation from each batch of new facts — including correct
handling of stratified negation, where new facts can *withdraw* previously
derived conclusions (the session re-runs exactly the strata whose negation
references changed).

The scenario: a small social graph with transitive reachability and a
negation rule flagging one-way relationships.  We load an initial graph,
then feed three delta batches, querying between arrivals.

Run with::

    python examples/streaming_updates.py
"""

from repro import DeltaSession

PROGRAM = """
    triple(?X, follows, ?Y) -> follows(?X, ?Y).
    follows(?X, ?Y) -> reaches(?X, ?Y).
    reaches(?X, ?Y), follows(?Y, ?Z) -> reaches(?X, ?Z).
    follows(?X, ?Y), not reaches(?Y, ?X) -> unreciprocated(?X, ?Y).
"""

INITIAL = [
    ("ana", "follows", "bo"),
    ("bo", "follows", "cem"),
]

BATCHES = [
    # 1. the chain grows: new reachability, nothing withdrawn
    [("cem", "follows", "dee"), ("dee", "follows", "eli")],
    # 2. a cycle closes: `bo -> ana` makes earlier one-way edges mutual,
    #    so the negation stratum is re-run and facts are *withdrawn*
    [("bo", "follows", "ana")],
    # 3. a newcomer attaches to the existing component
    [("fay", "follows", "ana")],
]


def show(session, label):
    reaches = sorted((str(a), str(b)) for a, b in session.query("reaches"))
    oneway = sorted((str(a), str(b)) for a, b in session.query("unreciprocated"))
    print(f"{label}: {len(session)} facts")
    print(f"  reaches        : {reaches}")
    print(f"  unreciprocated : {oneway}")


def main():
    with DeltaSession(PROGRAM, INITIAL) as session:
        show(session, "initial load")
        for i, batch in enumerate(BATCHES, start=1):
            result = session.push(batch)
            action = (
                f"re-ran strata >= {result.rebuilt_from}"
                if result.rebuilt_from is not None
                else f"continued from stratum {result.affected_stratum} "
                f"in {result.rounds} delta round(s)"
            )
            print(f"\nbatch {i} ({result.new_edb} new facts, {action})")
            show(session, f"after batch {i}")


if __name__ == "__main__":
    main()
