"""Quickstart: write a plain rule program and query an RDF graph.

The example follows Section 2 of the paper: the author list of a small
bibliographic graph, first as a plain rule (query (2)), then as a
CONSTRUCT-style query producing a new RDF graph (rule (3)), and finally the
recursive transport-service reachability query that SPARQL 1.1 property paths
cannot express.

Run with::

    python examples/quickstart.py
"""

from repro import evaluate, parse_program, TriQLiteQuery
from repro.rdf import parse_ntriples, serialize_ntriples
from repro.rdf.graph import database_to_graph
from repro.workloads.graphs import paper_transport_graph

# ---------------------------------------------------------------------------
# 1. A small RDF graph (the paper's G1), in a line-per-triple syntax.
# ---------------------------------------------------------------------------

G1 = parse_ntriples(
    """
    dbUllman is_author_of "The Complete Book" .
    dbUllman name "Jeffrey Ullman" .
    """
)

# ---------------------------------------------------------------------------
# 2. Query (2) of the paper: the list of authors, as a single plain rule.
# ---------------------------------------------------------------------------

AUTHORS = """
    triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).
"""

answers = evaluate(AUTHORS, "query", G1.to_database())
print("authors:", sorted(value.value for (value,) in answers))

# ---------------------------------------------------------------------------
# 3. Rule (3): produce an RDF graph as output (CONSTRUCT without new syntax).
# ---------------------------------------------------------------------------

CONSTRUCT = parse_program(
    """
    triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> out(?X, name_author, ?Z).
    """
)
construct_query = TriQLiteQuery(CONSTRUCT, "out", output_arity=3)
materialisation = construct_query.materialise(G1.to_database())
output_graph = database_to_graph(materialisation.instance.with_predicate("out"), predicate="out")
print("\nconstructed graph:")
print(serialize_ntriples(output_graph))

# ---------------------------------------------------------------------------
# 4. The transport-service reachability query (general recursion).
# ---------------------------------------------------------------------------

TRANSPORT = """
    triple(?X, partOf, transportService) -> ts(?X).
    triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
    ts(?T), triple(?X, ?T, ?Y) -> query(?X, ?Y).
    ts(?T), triple(?X, ?T, ?Z), query(?Z, ?Y) -> query(?X, ?Y).
"""

reachable = evaluate(TRANSPORT, "query", paper_transport_graph().to_database())
print("reachable city pairs:")
for origin, destination in sorted((a.value, b.value) for a, b in reachable):
    print(f"  {origin} -> {destination}")
