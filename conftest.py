"""Pytest bootstrap: make ``src/`` importable even without an installed package.

The canonical workflow is ``pip install -e . && pytest``; this shim only adds
the source tree to ``sys.path`` as a fallback so the test and benchmark suites
also run in environments where the editable install is unavailable (e.g.
fully offline machines missing the ``wheel`` package).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
