"""Experiment Figure 1 — the proof tree of p(a,a) (Example 6.10).

Reproduces Figure 1 of the paper: the warded program of Example 6.10 over the
database {s(a,a,a), t(a)} derives p(a,a), and the engine's provenance unfolds
into a proof tree whose leaves are database atoms and whose rules come from
the program.  The benchmark measures materialisation plus proof-tree
extraction, on the paper's instance and on longer s-chains.
"""

import pytest

from repro.core.prooftree import extract_proof_tree
from repro.core.warded_engine import WardedEngine
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program

EXAMPLE_610 = """
    s(?X, ?Y, ?Z) -> exists ?W . s(?X, ?Z, ?W).
    s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
    t(?X) -> exists ?Z . p(?X, ?Z).
    p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
    r(?X, ?Y, ?Z) -> p(?X, ?Z).
"""


def test_figure1_proof_tree_of_example_610(benchmark):
    program = parse_program(EXAMPLE_610)
    database = Database([parse_atom("s(a,a,a)"), parse_atom("t(a)")])
    target = parse_atom("p(a,a)")

    def derive_and_explain():
        engine = WardedEngine(program)
        result = engine.materialise(database)
        return extract_proof_tree(target, result, database)

    tree = benchmark(derive_and_explain)
    assert tree.root.atom == target
    assert tree.leaves_in_database()
    assert tree.depth() >= 4
    benchmark.extra_info["proof_tree_size"] = tree.size()
    benchmark.extra_info["proof_tree_depth"] = tree.depth()


@pytest.mark.parametrize("chain_length", [2, 6, 12])
def test_figure1_scaled_chains(benchmark, chain_length):
    """Proof trees for q(a0, a0) over longer s-chains (same rule shapes)."""
    program = parse_program(EXAMPLE_610)
    facts = [parse_atom("t(a0)")]
    for i in range(chain_length):
        facts.append(parse_atom(f"s(a{i}, a{i}, a{i})"))
    database = Database(facts)
    target = parse_atom("p(a0,a0)")

    def derive():
        engine = WardedEngine(program)
        result = engine.materialise(database)
        return extract_proof_tree(target, result, database)

    tree = benchmark(derive)
    assert tree.leaves_in_database()
    benchmark.extra_info["chain_length"] = chain_length
    benchmark.extra_info["proof_tree_size"] = tree.size()
