"""Experiment T5.2 — correctness and cost of the SPARQL → Datalog translation.

Theorem 5.2: ⟦P⟧_G = ⟦(P_dat, tau_db(G))⟧.  The benchmark evaluates a fixed
pattern suite both ways over random graphs of growing size, asserts equality
of the answer sets, and measures the two evaluation paths.
"""

import pytest

from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.sparql.evaluator import evaluate_pattern
from repro.sparql.parser import parse_sparql
from repro.translation.answers import decode_answers
from repro.translation.sparql_to_datalog import translate_select_query
from repro.workloads.graphs import random_rdf_graph

QUERY_SUITE = [
    "SELECT ?X ?Y WHERE { ?X knows ?Y }",
    "SELECT ?X ?Z WHERE { ?X knows ?Y . ?Y knows ?Z }",
    "SELECT ?X ?Y ?Z WHERE { ?X knows ?Y OPTIONAL { ?Y phone ?Z } }",
    "SELECT ?X WHERE { { ?X name ?N } UNION { ?X worksFor ?W } }",
    "SELECT ?X ?Y WHERE { ?X knows ?Y FILTER (!(?X = ?Y)) }",
]


def _sparql_answers(graph, queries):
    return [evaluate_pattern(q.algebra(), graph) for q in queries]


def _datalog_answers(graph, translations):
    database = graph.to_database()
    results = []
    for translation in translations:
        instance = SemiNaiveEvaluator(translation.program).evaluate(database)
        tuples = {
            tuple(a.terms)
            for a in instance.with_predicate(translation.answer_predicate)
            if a.is_ground
        }
        results.append(decode_answers(tuples, translation.answer_variables))
    return results


@pytest.mark.parametrize("n_triples", [50, 150])
def test_theorem52_sparql_side(benchmark, n_triples):
    graph = random_rdf_graph(n_triples, n_nodes=25, seed=7)
    queries = [parse_sparql(text) for text in QUERY_SUITE]
    answers = benchmark(lambda: _sparql_answers(graph, queries))
    benchmark.extra_info["triples"] = n_triples
    benchmark.extra_info["answer_counts"] = [len(a) for a in answers]


@pytest.mark.parametrize("n_triples", [50, 150])
def test_theorem52_datalog_side_matches(benchmark, n_triples):
    graph = random_rdf_graph(n_triples, n_nodes=25, seed=7)
    queries = [parse_sparql(text) for text in QUERY_SUITE]
    translations = [translate_select_query(q) for q in queries]

    datalog_results = benchmark(lambda: _datalog_answers(graph, translations))
    sparql_results = _sparql_answers(graph, queries)
    for sparql_answers, datalog_answers, text in zip(
        sparql_results, datalog_results, QUERY_SUITE
    ):
        assert sparql_answers == datalog_answers, text
    benchmark.extra_info["triples"] = n_triples
    benchmark.extra_info["answer_counts"] = [len(a) for a in datalog_results]
