"""Scale series C — deep chains, layered reachability, and larger k-cliques.

The reachability and clique shapes of the paper's figures, scaled past them
(ROADMAP: "wider workloads"): a depth series whose transitive closure runs
hundreds of small delta rounds, a layered series whose rounds carry wide
deltas (the shape the sharded parallel executor partitions across workers),
and a k-clique series on denser graphs than the Example 4.3 sizes.
"""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.reductions.clique import contains_clique
from repro.workloads.graphs import chain_graph, layered_graph, random_undirected_graph

REACHABILITY = parse_program(
    """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
    """
)


@pytest.mark.parametrize("depth", [64, 128, 256])
def test_deep_chain_closure(benchmark, depth):
    database = chain_graph(depth, branches_per_node=1).to_database()
    evaluator = SemiNaiveEvaluator(REACHABILITY)

    result = benchmark.pedantic(lambda: evaluator.evaluate(database), rounds=1, iterations=1)
    # (i, j) chain pairs with i < j, plus every branch leaf reachable from
    # each chain prefix: depth * (depth + 1) connected pairs in total.
    pairs = sum(1 for atom in result if atom.predicate == "connected")
    assert pairs == depth * (depth + 1)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["connected_pairs"] = pairs


@pytest.mark.parametrize("layers,width", [(6, 24), (8, 32)])
def test_layered_reachability(benchmark, layers, width):
    database = layered_graph(layers, width, out_degree=3, seed=1).to_database()
    evaluator = SemiNaiveEvaluator(REACHABILITY)

    result = benchmark.pedantic(lambda: evaluator.evaluate(database), rounds=1, iterations=1)
    pairs = sum(1 for atom in result if atom.predicate == "connected")
    assert pairs > width * layers  # reachability fans out across layers
    benchmark.extra_info["layers"] = layers
    benchmark.extra_info["width"] = width
    benchmark.extra_info["connected_pairs"] = pairs


@pytest.mark.parametrize("layers,width", [(12, 64)])
def test_closure_probe_184k(benchmark, layers, width):
    """The 184k-fact closure probe pinning the shared-memory sync win.

    layered_graph(12, 64) materializes 184,498 facts (179,956 connected
    pairs) through rounds of wide deltas, so in parallel mode every round
    crosses the dispatch threshold and the sync direction dominates the
    wire.  With shared-memory attach the parent ships segment tables
    instead of replica fact rows: pipe bytes drop from ~14.4 MB (pre-
    columnar protocol) to ~550 KB on this probe (~26x), and ~14x against
    the same engine with ``REPRO_SHM=0``.  ``parallel_bytes_shipped`` is
    recorded per scenario, so the harness baseline gate keeps the
    reduction pinned.
    """
    database = layered_graph(layers, width, out_degree=3, seed=1).to_database()
    evaluator = SemiNaiveEvaluator(REACHABILITY)

    result = benchmark.pedantic(lambda: evaluator.evaluate(database), rounds=1, iterations=1)
    pairs = sum(1 for atom in result if atom.predicate == "connected")
    assert pairs == 179956
    benchmark.extra_info["layers"] = layers
    benchmark.extra_info["width"] = width
    benchmark.extra_info["connected_pairs"] = pairs


#: (graph key) -> (sync ns, postings rows rebuilt) for the CSR-off control
#: replay; one probe per process, shared by every warmup/repeat invocation —
#: see the recompute memos in bench_stream_churn.py for the rationale.
_CSR_OFF_MEMO = {}


@pytest.mark.parametrize("layers,width", [(12, 64)])
def test_repeated_push_csr_sync(benchmark, layers, width):
    """Repeated-push sync probe: CSR attach deletes the postings rebuild.

    The same 184k closure as ``test_closure_probe_184k``, but pushed through
    a long-lived :class:`DeltaSession` in four chunks so the parallel
    executor synchronises workers repeatedly.  Pre-CSR, every sync made each
    worker re-post the new replica rows into per-process postings dicts —
    O(rows x positions) per worker per sync.  With the CSR directory sealed
    in shared memory the workers attach and binary-search it instead, so
    ``postings_rebuilt`` must read **zero** on the shm+CSR path; the probe
    asserts exactly that, and records the CSR-off control's sync time and
    rebuild volume for the committed baseline to document the win.
    """
    from repro.engine.incremental import DeltaSession
    from repro.engine.mode import get_execution_mode
    from repro.engine.parallel import csr_enabled, csr_override, shm_enabled
    from repro.engine.stats import STATS

    database = list(layered_graph(layers, width, out_degree=3, seed=1).to_database())
    chunk = (len(database) + 3) // 4
    batches = [database[i : i + chunk] for i in range(0, len(database), chunk)]

    def replay():
        session = DeltaSession(REACHABILITY, batches[0])
        for batch in batches[1:]:
            session.push(batch)
        size = len(session)
        session.close()
        return size

    size = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert size == 184498  # triple + knows + connected closure of the probe
    benchmark.extra_info["chunks"] = len(batches)
    if get_execution_mode() == "parallel" and shm_enabled() and csr_enabled():
        # The tentpole invariant: zero postings rows rebuilt worker-side.
        # (A silent fallback to the legacy protocol would fail this too —
        # deliberately: the probe exists to keep the zero-copy path alive.)
        assert STATS.postings_rebuilt == 0, STATS.postings_rebuilt
        benchmark.extra_info["sync_ms_csr_on"] = round(
            STATS.parallel_sync_ns / 1e6, 3
        )
        memo_key = (layers, width)
        if memo_key not in _CSR_OFF_MEMO:
            with csr_override(False):
                STATS.reset()
                replay()
                _CSR_OFF_MEMO[memo_key] = (
                    STATS.parallel_sync_ns,
                    STATS.postings_rebuilt,
                )
        off_sync_ns, off_rebuilt = _CSR_OFF_MEMO[memo_key]
        assert off_rebuilt > 0  # the control really pays the rebuild
        benchmark.extra_info["sync_ms_csr_off"] = round(off_sync_ns / 1e6, 3)
        benchmark.extra_info["postings_rebuilt_csr_off"] = off_rebuilt


@pytest.mark.parametrize("n,k,p", [(10, 3, 0.4), (12, 3, 0.3)])
def test_larger_cliques(benchmark, n, k, p):
    edges = random_undirected_graph(n, p, seed=n * 13 + k)

    found = benchmark.pedantic(lambda: contains_clique(edges, k), rounds=1, iterations=1)
    assert isinstance(found, bool)
    benchmark.extra_info["vertices"] = n
    benchmark.extra_info["k"] = k
    benchmark.extra_info["edges"] = len(edges)
