"""Scale series C — deep chains, layered reachability, and larger k-cliques.

The reachability and clique shapes of the paper's figures, scaled past them
(ROADMAP: "wider workloads"): a depth series whose transitive closure runs
hundreds of small delta rounds, a layered series whose rounds carry wide
deltas (the shape the sharded parallel executor partitions across workers),
and a k-clique series on denser graphs than the Example 4.3 sizes.
"""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.reductions.clique import contains_clique
from repro.workloads.graphs import chain_graph, layered_graph, random_undirected_graph

REACHABILITY = parse_program(
    """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
    """
)


@pytest.mark.parametrize("depth", [64, 128, 256])
def test_deep_chain_closure(benchmark, depth):
    database = chain_graph(depth, branches_per_node=1).to_database()
    evaluator = SemiNaiveEvaluator(REACHABILITY)

    result = benchmark.pedantic(lambda: evaluator.evaluate(database), rounds=1, iterations=1)
    # (i, j) chain pairs with i < j, plus every branch leaf reachable from
    # each chain prefix: depth * (depth + 1) connected pairs in total.
    pairs = sum(1 for atom in result if atom.predicate == "connected")
    assert pairs == depth * (depth + 1)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["connected_pairs"] = pairs


@pytest.mark.parametrize("layers,width", [(6, 24), (8, 32)])
def test_layered_reachability(benchmark, layers, width):
    database = layered_graph(layers, width, out_degree=3, seed=1).to_database()
    evaluator = SemiNaiveEvaluator(REACHABILITY)

    result = benchmark.pedantic(lambda: evaluator.evaluate(database), rounds=1, iterations=1)
    pairs = sum(1 for atom in result if atom.predicate == "connected")
    assert pairs > width * layers  # reachability fans out across layers
    benchmark.extra_info["layers"] = layers
    benchmark.extra_info["width"] = width
    benchmark.extra_info["connected_pairs"] = pairs


@pytest.mark.parametrize("layers,width", [(12, 64)])
def test_closure_probe_184k(benchmark, layers, width):
    """The 184k-fact closure probe pinning the shared-memory sync win.

    layered_graph(12, 64) materializes 184,498 facts (179,956 connected
    pairs) through rounds of wide deltas, so in parallel mode every round
    crosses the dispatch threshold and the sync direction dominates the
    wire.  With shared-memory attach the parent ships segment tables
    instead of replica fact rows: pipe bytes drop from ~14.4 MB (pre-
    columnar protocol) to ~550 KB on this probe (~26x), and ~14x against
    the same engine with ``REPRO_SHM=0``.  ``parallel_bytes_shipped`` is
    recorded per scenario, so the harness baseline gate keeps the
    reduction pinned.
    """
    database = layered_graph(layers, width, out_degree=3, seed=1).to_database()
    evaluator = SemiNaiveEvaluator(REACHABILITY)

    result = benchmark.pedantic(lambda: evaluator.evaluate(database), rounds=1, iterations=1)
    pairs = sum(1 for atom in result if atom.predicate == "connected")
    assert pairs == 179956
    benchmark.extra_info["layers"] = layers
    benchmark.extra_info["width"] = width
    benchmark.extra_info["connected_pairs"] = pairs


@pytest.mark.parametrize("n,k,p", [(10, 3, 0.4), (12, 3, 0.3)])
def test_larger_cliques(benchmark, n, k, p):
    edges = random_undirected_graph(n, p, seed=n * 13 + k)

    found = benchmark.pedantic(lambda: contains_clique(edges, k), rounds=1, iterations=1)
    assert isinstance(found, bool)
    benchmark.extra_info["vertices"] = n
    benchmark.extra_info["k"] = k
    benchmark.extra_info["edges"] = len(edges)
