"""Experiment T4.4 — ExpTime behaviour of TriQ 1.0 evaluation.

Theorem 4.4 states Eval for TriQ 1.0 is ExpTime-complete in data complexity.
The witness is the Example 4.3 program: its chase materialises the full tree
of n^k mappings.  The benchmark measures the chase size for growing n (at
fixed k = 3) and asserts the super-linear growth: the number of mapping nodes
(`ism` facts) grows like n^k, so the ratio between consecutive sizes
increases with n — the shape expected from an exponential-in-k, polynomially
unbounded-in-n construction.
"""

import pytest

from repro.datalog.chase import ChaseEngine
from repro.datalog.semantics import StratifiedSemantics
from repro.reductions.clique import clique_database, clique_program


def _path_edges(n: int):
    """A path graph on exactly n vertices (deterministic, n-1 edges)."""
    return [(f"v{i}", f"v{i + 1}") for i in range(n - 1)]


def _materialisation_size(n: int, k: int = 3) -> int:
    edges = _path_edges(n)
    database = clique_database(edges, k)
    semantics = StratifiedSemantics(clique_program(), ChaseEngine(max_steps=2_000_000))
    instance = semantics.materialise(database)
    return len(instance.with_predicate("ism"))


@pytest.mark.parametrize("n", [2, 3, 4])
def test_theorem44_mapping_tree_growth(benchmark, n):
    size = benchmark.pedantic(lambda: _materialisation_size(n), rounds=1, iterations=1)
    # The mapping tree has 1 + n + n^2 + ... + n^k ism nodes.
    expected = sum(n ** i for i in range(0, 4))
    assert size == expected
    benchmark.extra_info["n"] = n
    benchmark.extra_info["ism_nodes"] = size
    benchmark.extra_info["expected_n_pow_k_series"] = expected


def test_theorem44_growth_is_superlinear(benchmark):
    """The materialisation grows like n^k: the fitted log-log exponent is ~k.

    This is the data-complexity face of Theorem 4.4: for the fixed k = 3
    query, the chase is polynomial of degree k in the data, and the degree
    grows with the query parameter k — contrast with the T6.7 benchmark where
    the fixed TriQ-Lite 1.0 query stays near-linear regardless of the data.
    """
    import math

    def collect():
        return [(n, _materialisation_size(n)) for n in (2, 3, 4)]

    points = benchmark.pedantic(collect, rounds=1, iterations=1)
    (n0, s0), (n1, s1) = points[0], points[-1]
    exponent = math.log(s1 / s0) / math.log(n1 / n0)
    assert exponent > 2.0, f"expected ~cubic growth in n, got exponent {exponent:.2f}"
    benchmark.extra_info["sizes"] = points
    benchmark.extra_info["fitted_exponent"] = round(exponent, 2)
