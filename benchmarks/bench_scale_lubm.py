"""Scale series L — LUBM-style university workloads.

University-scale materialisation for the sharded parallel executor
(ROADMAP: "wider workloads").  The fixed entailment-regime query of the
Theorem 6.7 series runs over the richer multi-university ABoxes of
:func:`repro.workloads.ontologies.lubm_style_ontology` at three scales, so
the per-round deltas are large enough for the hash-partitioned worker pool
to have real batches to chew on — unlike the paper-figure scenarios, whose
deltas mostly sit below the parallel dispatch threshold.
"""

import pytest

from repro.owl.rdf_mapping import ontology_to_graph
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import entailment_regime_query
from repro.workloads.ontologies import lubm_style_ontology

QUERY_TEXT = "SELECT ?X WHERE { ?X rdf:type Person }"

#: (universities, departments per university, students per department)
SCALES = [(1, 2, 20), (2, 3, 30), (3, 4, 40)]


def _database(universities, departments, students):
    ontology = lubm_style_ontology(
        n_universities=universities,
        departments_per_university=departments,
        faculty_per_department=4,
        students_per_department=students,
        courses_per_department=6,
    )
    return ontology_to_graph(ontology).to_database()


@pytest.mark.parametrize("universities,departments,students", SCALES)
def test_lubm_person_query(benchmark, universities, departments, students):
    query, _ = entailment_regime_query(parse_sparql(QUERY_TEXT), "U")
    database = _database(universities, departments, students)

    answers = benchmark.pedantic(lambda: query.evaluate(database), rounds=1, iterations=1)
    assert len(answers) >= universities * departments * (students + 4)
    benchmark.extra_info["triples"] = len(database)
    benchmark.extra_info["answers"] = len(answers)
