"""Scale series D — streaming incremental deltas vs full recomputation.

Each scenario replays an insert-only fact stream (generators in
:mod:`repro.workloads.streams`) through a
:class:`~repro.engine.incremental.DeltaSession` — the measured section — and
separately times the naive strategy the session replaces: a cold fixpoint
after the initial load and after **every** batch arrival.  The recompute
time and the derived ``incremental_speedup`` are attached as extra info;
``benchmarks/harness.py`` (schema v4) promotes them, together with the
``delta_rounds`` count, into first-class record columns and gates the
speedup against the committed baseline.

The four scenarios cover the subsystem's regimes: a trickle-insert chain
(pure continuation, the incremental best case), a growing LUBM-style
universe (wide mixed-predicate batches), a sliding social window with a
negation stratum (every push re-runs the stratum above the closure), and an
existential trickle (chase continuation with stable content-addressed
nulls).
"""

import time

import pytest

from repro.datalog.parser import parse_program
from repro.engine.incremental import DeltaSession, cold_equivalent
from repro.workloads.streams import (
    growing_university_stream,
    sliding_social_stream,
    trickle_insert_chain,
)

REACHABILITY = parse_program(
    """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
    """
)

SOCIAL = parse_program(
    """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
    knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
    """
)

HIERARCHY = parse_program(
    """
    triple(?C, rdfs:subClassOf, ?D) -> sub_class(?C, ?D).
    sub_class(?C, ?D), sub_class(?D, ?E) -> sub_class(?C, ?E).
    triple(?P, rdfs:subPropertyOf, ?Q) -> sub_prop(?P, ?Q).
    sub_prop(?P, ?Q), sub_prop(?Q, ?R) -> sub_prop(?P, ?R).
    triple(?X, rdf:type, ?C) -> inst(?X, ?C).
    inst(?X, ?C), sub_class(?C, ?D) -> inst(?X, ?D).
    triple(?X, ?P, ?Y), sub_prop(?P, ?Q) -> linked(?X, ?Q, ?Y).
    linked(?X, ?P, ?Y), sub_prop(?P, ?Q) -> linked(?X, ?Q, ?Y).
    """
)

REGISTRATION_CHASE = parse_program(
    """
    triple(?X, memberOf, ?G) -> member(?X, ?G).
    member(?X, ?G) -> exists ?P . profile(?X, ?P).
    profile(?X, ?P) -> registered(?X).
    """
)


def _stream_atoms(initial, batches):
    """(initial atoms, batch atom lists) from a (graph, triple feed) pair."""
    return (
        [triple.to_atom() for triple in initial],
        [[triple.to_atom() for triple in batch] for batch in batches],
    )


#: (scenario key, execution mode) -> (recompute seconds, final size).  The
#: recompute probe is identical for every warmup/repeat invocation of a
#: scenario, so it runs once per (scenario, mode): repeats measure the
#: incremental section without ~seconds of unmeasured allocation churn
#: (and its GC fallout) in front of them.
_RECOMPUTE_MEMO = {}


def _time_recompute(key, program, initial_atoms, batch_atoms, engine):
    """Wall time of cold-evaluating after the load and after every arrival.

    Best of two probes: the ``incremental_speedup`` this feeds is gated
    against half its baseline value, and a single multi-second probe on a
    busy 1-core runner swings ~2x process to process — enough to record a
    lucky-high baseline that later honest runs cannot reach.  The minimum
    of two probes is a stable lower bound on the recompute cost, which
    keeps the recorded ratio conservative on both sides of the gate.
    """
    from repro.engine.mode import get_execution_mode

    memo_key = (key, get_execution_mode())
    cached = _RECOMPUTE_MEMO.get(memo_key)
    if cached is not None:
        return cached
    best = None
    for _ in range(2):
        start = time.perf_counter()
        edb = list(initial_atoms)
        result = cold_equivalent(program, edb, engine=engine)
        for batch in batch_atoms:
            edb.extend(batch)
            result = cold_equivalent(program, edb, engine=engine)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, len(result))
    _RECOMPUTE_MEMO[memo_key] = best
    return best


def _run_stream(benchmark, key, program, initial, batches, engine="seminaive"):
    """Benchmark the incremental replay; report recompute extras."""
    initial_atoms, batch_atoms = _stream_atoms(initial, batches)
    recompute_seconds, cold_size = _time_recompute(
        key, program, initial_atoms, batch_atoms, engine
    )

    def incremental():
        session = DeltaSession(program, initial_atoms, engine=engine)
        rounds = 0
        for batch in batch_atoms:
            rounds += session.push(batch).rounds
        size = len(session)
        session.close()
        return rounds, size

    probe_start = time.perf_counter()
    rounds, size = incremental()
    incremental_seconds = time.perf_counter() - probe_start
    assert size == cold_size  # incremental == recompute, at scale

    benchmark.pedantic(incremental, rounds=1, iterations=1)
    benchmark.extra_info["batches"] = len(batch_atoms)
    benchmark.extra_info["delta_rounds"] = rounds
    benchmark.extra_info["facts_total"] = size
    benchmark.extra_info["recompute_seconds"] = round(recompute_seconds, 6)
    benchmark.extra_info["probe_speedup"] = round(
        recompute_seconds / incremental_seconds, 2
    )
    return recompute_seconds, incremental_seconds


@pytest.mark.parametrize("depth,batches", [(64, 12), (128, 16)])
def test_trickle_insert_chain(benchmark, depth, batches):
    initial, feed = trickle_insert_chain(depth, batches=batches, edges_per_batch=1)
    recompute, incremental = _run_stream(
        benchmark, ("trickle", depth, batches), REACHABILITY, initial, feed
    )
    # The headline claim of the streaming subsystem: trickle inserts beat
    # recompute-per-arrival comfortably (the committed baseline records the
    # real margin; this in-test floor only guards against the incremental
    # path silently degenerating into recomputation).
    assert recompute > incremental


@pytest.mark.parametrize("universities", [4])
def test_growing_universities(benchmark, universities):
    initial, feed = growing_university_stream(
        universities, departments_per_university=2, students_per_department=12
    )
    _run_stream(benchmark, ("lubm", universities), HIERARCHY, initial, feed)


@pytest.mark.parametrize("batches", [8])
def test_sliding_social_window(benchmark, batches):
    # insert_only keeps this series comparable with the committed baseline
    # records from before the stream gained real eviction batches; the
    # churn (insert + retract) schedule is measured by bench_stream_churn.py.
    initial, feed = sliding_social_stream(
        initial_edges=150, batches=batches, edges_per_batch=30, window=40, drift=8,
        insert_only=True,
    )
    _run_stream(benchmark, ("social", batches), SOCIAL, initial, feed)


@pytest.mark.parametrize("members", [120])
def test_trickle_chase_registrations(benchmark, members):
    initial, feed = trickle_insert_chain(
        members, batches=10, edges_per_batch=4, predicate="memberOf"
    )
    _run_stream(
        benchmark, ("chase", members), REGISTRATION_CHASE, initial, feed, engine="chase"
    )
