"""Scale series E — churn streams: incremental DRed deletion vs recompute.

The insert-only streaming series (``bench_scale_streaming.py``) measures
:meth:`~repro.engine.incremental.DeltaSession.push`; this series measures the
other half of the maintenance story.  Each scenario replays a churn feed —
``(inserts, deletes)`` batches — through one long-lived session (``push`` +
``retract``, the measured section), and separately times the strategy
retraction replaces: a cold fixpoint over the *surviving* EDB after every
window slide.  ``recompute_seconds`` and the derived ``probe_speedup`` land
in extra info for the harness to promote and gate, exactly like the
insert-only series.

Two regimes, deliberately:

* The **sliding chain** (:func:`~repro.workloads.streams.sliding_chain_stream`)
  is deletion's best case — a tail eviction supports only the pairs starting
  at the dead node, nothing is re-derivable, so DRed touches Θ(window) facts
  where a recompute pays Θ(window²).  This scenario carries the in-test
  floor (recompute must stay slower): it guards the subsystem's reason to
  exist.
* The **churn-heavy social window**
  (:func:`~repro.workloads.streams.churn_heavy_social_stream`) is deletion's
  worst case — the window is densely connected, nearly every derived fact
  routes through an evicted edge, and over-deletion approaches the whole
  materialisation.  Here the engine's degeneration guard aborts marking and
  rebuilds cold, so these scenarios pin *parity and bounded badness* (the
  baseline records the real ratio), not a win DRed cannot deliver on
  strongly connected inputs.
"""

import time

import pytest

from repro.datalog.parser import parse_program
from repro.engine.incremental import DeltaSession, cold_equivalent
from repro.workloads.streams import churn_heavy_social_stream, sliding_chain_stream

REACHABILITY = parse_program(
    """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
    """
)

SOCIAL = parse_program(
    """
    triple(?X, knows, ?Y) -> knows(?X, ?Y).
    knows(?X, ?Y) -> connected(?X, ?Y).
    connected(?X, ?Y), knows(?Y, ?Z) -> connected(?X, ?Z).
    knows(?X, ?Y), not connected(?Y, ?X) -> oneway(?X, ?Y).
    """
)


def _churn_atoms(initial, feed):
    """(initial atoms, [(insert atoms, delete atoms), ...])."""
    return (
        [triple.to_atom() for triple in initial],
        [
            (
                [triple.to_atom() for triple in inserts],
                [triple.to_atom() for triple in deletes],
            )
            for inserts, deletes in feed
        ],
    )


#: (scenario key, execution mode) -> (recompute seconds, final size); one
#: probe per (scenario, mode), shared by every warmup/repeat invocation —
#: see the twin memo in bench_scale_streaming.py for the rationale.
_RECOMPUTE_MEMO = {}


def _time_recompute(key, program, initial_atoms, batches):
    """Wall time of cold-evaluating the surviving EDB after every slide.

    Best of two probes, for the same reason as the streaming series: the
    derived ``incremental_speedup`` gates against half its baseline, and a
    one-shot multi-second probe on a 1-core runner is ~2x noisy — the
    minimum of two is a stable, conservative estimate.
    """
    from repro.engine.mode import get_execution_mode

    memo_key = (key, get_execution_mode())
    cached = _RECOMPUTE_MEMO.get(memo_key)
    if cached is not None:
        return cached
    best = None
    for _ in range(2):
        start = time.perf_counter()
        edb = dict.fromkeys(initial_atoms)
        result = cold_equivalent(program, list(edb))
        for inserts, deletes in batches:
            for atom in inserts:
                edb[atom] = None
            for atom in deletes:
                edb.pop(atom, None)
            result = cold_equivalent(program, list(edb))
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, len(result))
    _RECOMPUTE_MEMO[memo_key] = best
    return best


def _run_churn(benchmark, key, program, initial, feed):
    """Benchmark the incremental push/retract replay; report recompute extras."""
    initial_atoms, batches = _churn_atoms(initial, feed)
    recompute_seconds, cold_size = _time_recompute(
        key, program, initial_atoms, batches
    )

    def incremental():
        session = DeltaSession(program, initial_atoms)
        rounds = overdeleted = rederived = 0
        for inserts, deletes in batches:
            rounds += session.push(inserts).rounds
            result = session.retract(deletes)
            rounds += result.rounds
            overdeleted += result.overdeleted
            rederived += result.rederived
        size = len(session)
        session.close()
        return rounds, overdeleted, rederived, size

    probe_start = time.perf_counter()
    rounds, overdeleted, rederived, size = incremental()
    incremental_seconds = time.perf_counter() - probe_start
    assert size == cold_size  # retraction parity with recompute, at scale

    benchmark.pedantic(incremental, rounds=1, iterations=1)
    benchmark.extra_info["batches"] = len(batches)
    benchmark.extra_info["delta_rounds"] = rounds
    benchmark.extra_info["overdeleted"] = overdeleted
    benchmark.extra_info["rederived_facts"] = rederived
    benchmark.extra_info["facts_total"] = size
    benchmark.extra_info["recompute_seconds"] = round(recompute_seconds, 6)
    benchmark.extra_info["probe_speedup"] = round(
        recompute_seconds / incremental_seconds, 2
    )
    return recompute_seconds, incremental_seconds


@pytest.mark.parametrize("batches", [6])
def test_churn_chain_window(benchmark, batches):
    initial, feed = sliding_chain_stream(
        window=200, batches=batches, edges_per_batch=8
    )
    recompute, incremental = _run_churn(
        benchmark, ("churn-chain", batches), REACHABILITY, initial, feed
    )
    # The headline claim of the retraction subsystem: on sparse churn,
    # incremental DRed deletion beats a cold fixpoint per window slide (the
    # committed baseline records the real margin — ~2.5× at this scale; this
    # floor only guards against the deletion path degenerating into
    # recomputation).
    assert recompute > incremental


@pytest.mark.parametrize("batches", [6])
def test_churn_compaction_bounded_lanes(benchmark, batches):
    """Forced-low compact ratio keeps tombstoned lanes bounded under churn.

    The sliding-chain feed again, but with ``compact_ratio`` forced to 0.2 so
    tombstone compaction actually fires mid-replay (the default 0.5 rarely
    trips on this feed).  The probe pins the bounded-lane contract of the
    maintenance surface: after the final retraction, no lane above the
    compaction row floor may carry more than the configured tombstone
    fraction — the dead rows a lane is allowed to accumulate are bounded by
    the knob, not by the lifetime of the session.  Compaction counts land in
    extra info; result parity with the no-compaction engine is pinned
    separately in ``tests/test_engine_retract_parity.py``.
    """
    from repro.engine.index import _COMPACT_MIN_ROWS, compact_ratio, set_compact_ratio

    ratio = 0.2
    initial, feed = sliding_chain_stream(
        window=200, batches=batches, edges_per_batch=8
    )
    initial_atoms, batch_atoms = _churn_atoms(initial, feed)

    def churn():
        previous = compact_ratio()
        set_compact_ratio(ratio)
        try:
            session = DeltaSession(REACHABILITY, initial_atoms)
            for inserts, deletes in batch_atoms:
                session.push(inserts)
                session.retract(deletes)
            index = session.instance._index
            lanes = {
                predicate: (index.row_count(predicate), index.live.get(predicate, 0))
                for predicate in index.rows
            }
            compactions = dict(session.compaction_counts)
            size = len(session)
            session.close()
            return size, lanes, compactions
        finally:
            set_compact_ratio(previous)

    size, lanes, compactions = benchmark.pedantic(churn, rounds=1, iterations=1)
    # The bounded-lane invariant: retraction ends every batch, and
    # _maybe_compact runs at the end of every retraction, so any big lane
    # still above the ratio after the replay means compaction failed to fire.
    for predicate, (total, live) in sorted(lanes.items()):
        if total >= _COMPACT_MIN_ROWS:
            assert (total - live) / total <= ratio, (predicate, total, live)
    assert sum(compactions.values()) >= 1  # the forced ratio really compacts
    benchmark.extra_info["batches"] = len(batch_atoms)
    benchmark.extra_info["compactions"] = sum(compactions.values())
    benchmark.extra_info["facts_total"] = size


@pytest.mark.parametrize("batches", [8])
def test_churn_reachability(benchmark, batches):
    initial, feed = churn_heavy_social_stream(
        initial_edges=150, batches=batches, edges_per_batch=30, window=40
    )
    recompute, incremental = _run_churn(
        benchmark, ("churn-tc", batches), REACHABILITY, initial, feed
    )
    # DRed's adversarial regime: the window is one dense component, so the
    # degeneration guard rebuilds cold instead of restoring per fact.  The
    # parity assert inside _run_churn is the contract here; the ceiling only
    # catches the guard failing open (marking the whole closure *and* paying
    # per-fact restoration was ~7× recompute before the guard existed).
    assert incremental < 6 * recompute


@pytest.mark.parametrize("batches", [8])
def test_churn_social_negation(benchmark, batches):
    initial, feed = churn_heavy_social_stream(
        initial_edges=120, batches=batches, edges_per_batch=24, window=36
    )
    recompute, incremental = _run_churn(
        benchmark, ("churn-social", batches), SOCIAL, initial, feed
    )
    assert incremental < 6 * recompute
