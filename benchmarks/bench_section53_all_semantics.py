"""Experiment S5.3 — the semantics without the active-domain restriction.

Section 5.3: ⟦·⟧^All finds answers witnessed by anonymous individuals that
⟦·⟧^U misses, while every ⟦·⟧^U answer remains an ⟦·⟧^All answer.  The
benchmark evaluates both regimes on the herbivore ontology and on chain
ontologies of growing length.
"""

import pytest

from repro.owl.model import Ontology, inverse, some
from repro.owl.rdf_mapping import ontology_to_graph
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import evaluate_under_entailment
from repro.workloads.ontologies import chain_basic_graph_pattern, chain_ontology_graph


def herbivore_graph(n_animals: int):
    ontology = Ontology()
    ontology.sub_class("animal", some("eats"))
    ontology.sub_class(some(inverse("eats")), "plant_material")
    for i in range(n_animals):
        ontology.assert_class("animal", f"animal{i}")
    return ontology_to_graph(ontology)


HERBIVORE_QUERY = "SELECT ?X WHERE { ?X eats _:B . _:B rdf:type plant_material }"


@pytest.mark.parametrize("n_animals", [3, 10])
def test_section53_all_vs_u_on_herbivores(benchmark, n_animals):
    graph = herbivore_graph(n_animals)
    query = parse_sparql(HERBIVORE_QUERY)

    def evaluate_both():
        return (
            evaluate_under_entailment(query, graph, "U"),
            evaluate_under_entailment(query, graph, "All"),
        )

    u_answers, all_answers = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    # U misses every animal (the witness is anonymous); All finds them all.
    assert u_answers == set()
    assert len(all_answers) == n_animals
    benchmark.extra_info["animals"] = n_animals
    benchmark.extra_info["u_answers"] = len(u_answers)
    benchmark.extra_info["all_answers"] = len(all_answers)


@pytest.mark.parametrize("n", [2, 5])
def test_section53_chain_pattern_only_under_all(benchmark, n):
    """The Lemma 6.5 pattern P_n is satisfiable only without the active-domain restriction."""
    graph = chain_ontology_graph(n)
    pattern = chain_basic_graph_pattern(n)

    def evaluate_both():
        return (
            evaluate_under_entailment(pattern, graph, "U"),
            evaluate_under_entailment(pattern, graph, "All"),
        )

    u_answers, all_answers = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    assert u_answers == set()
    assert len(all_answers) == 1  # the empty mapping: the boolean pattern holds
    benchmark.extra_info["n"] = n
