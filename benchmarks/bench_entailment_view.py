"""Service series — the ID-native view vs the per-query translation pipeline.

The acceptance scenario for the PR-6 read path: answer the LUBM query mix
through :class:`~repro.translation.entailment_regime.EntailmentView` (one
core materialization, direct interned-ID algebra per query) and report the
speedup over :func:`evaluate_under_entailment` (full translated program,
one warded materialization per query).  Only the view path is in the
measured section; the translated oracle is timed outside it and shipped via
``extra_info`` as ``view_speedup``, alongside a parity assertion — the two
routes must agree answer-for-answer while the speedup is measured.
"""

import time

import pytest

from repro.owl.rdf_mapping import ontology_to_graph
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import (
    EntailmentView,
    evaluate_under_entailment,
)
from repro.workloads.ontologies import lubm_style_ontology

QUERY_TEXTS = (
    "SELECT ?X WHERE { ?X rdf:type Person }",
    "SELECT ?X WHERE { ?X rdf:type Student }",
    "SELECT ?X ?Y WHERE { ?X takesCourse ?Y }",
    "SELECT ?X WHERE { ?X worksFor _:B }",
    "SELECT ?X WHERE { ?X rdf:type Professor . ?X worksFor _:B }",
)

#: (universities, departments per university, students per department)
SCALES = [(1, 2, 20), (2, 3, 30)]


def _graph(universities, departments, students):
    ontology = lubm_style_ontology(
        n_universities=universities,
        departments_per_university=departments,
        faculty_per_department=4,
        students_per_department=students,
        courses_per_department=6,
    )
    return ontology_to_graph(ontology)


@pytest.mark.parametrize("universities,departments,students", SCALES)
def test_lubm_query_mix_view(benchmark, universities, departments, students):
    graph = _graph(universities, departments, students)
    queries = [parse_sparql(text) for text in QUERY_TEXTS]

    # The translated oracle: one full materialization per query.  Timed
    # outside the measured section, then used as the parity reference.
    oracle_start = time.perf_counter()
    oracle = [evaluate_under_entailment(query, graph, "U") for query in queries]
    oracle_seconds = time.perf_counter() - oracle_start

    def view_query_mix():
        view = EntailmentView(graph)
        return [view.evaluate(query, "U") for query in queries]

    answers = benchmark.pedantic(view_query_mix, rounds=1, iterations=1)
    assert answers == oracle
    view_seconds = benchmark.wall_seconds if hasattr(benchmark, "wall_seconds") else None
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["answers"] = sum(len(a) for a in answers)
    benchmark.extra_info["translation_seconds"] = round(oracle_seconds, 6)
    if view_seconds:
        benchmark.extra_info["view_speedup"] = round(oracle_seconds / view_seconds, 2)
