"""Experiment Table 1 — OWL 2 QL core axioms ↔ RDF triples.

Reproduces Table 1 of the paper: every axiom form maps to its RDF triple and
back, and the round-trip scales linearly with the ontology size.  The
benchmark measures the translation of a university-style ontology in both
directions and asserts exactness of the round trip.
"""

from repro.owl.model import (
    ClassAssertion,
    DisjointClasses,
    DisjointObjectProperties,
    NamedClass,
    NamedProperty,
    ObjectPropertyAssertion,
    SubClassOf,
    SubObjectPropertyOf,
)
from repro.owl.rdf_mapping import axiom_to_triple, graph_to_ontology, ontology_to_graph
from repro.workloads.ontologies import university_ontology


def test_table1_axiom_to_triple_forms(benchmark):
    """Every row of Table 1, translated many times (micro-benchmark)."""
    from repro.datalog.terms import Constant
    from repro.owl.model import inverse, some

    axioms = [
        SubClassOf(NamedClass("b1"), some("p")),
        SubObjectPropertyOf(NamedProperty("r1"), inverse("r2")),
        DisjointClasses(NamedClass("b1"), NamedClass("b2")),
        DisjointObjectProperties(NamedProperty("r1"), NamedProperty("r2")),
        ClassAssertion(some(inverse("p")), Constant("a")),
        ObjectPropertyAssertion(NamedProperty("p"), Constant("a1"), Constant("a2")),
    ]

    def translate_all():
        return [axiom_to_triple(axiom) for axiom in axioms]

    triples = benchmark(translate_all)
    assert len(triples) == 6
    predicates = {t.predicate.value for t in triples}
    assert predicates == {
        "rdfs:subClassOf",
        "rdfs:subPropertyOf",
        "owl:disjointWith",
        "owl:propertyDisjointWith",
        "rdf:type",
        "p",
    }


def test_table1_roundtrip_on_university_ontology(benchmark):
    """Ontology -> RDF -> ontology is the identity on axioms (per-axiom Table 1 rows)."""
    ontology = university_ontology(n_departments=3, students_per_department=10)

    def roundtrip():
        graph = ontology_to_graph(ontology)
        return graph, graph_to_ontology(graph)

    graph, recovered = benchmark(roundtrip)
    assert sorted(map(str, recovered.axioms)) == sorted(map(str, ontology.axioms))
    benchmark.extra_info["axioms"] = len(ontology.axioms)
    benchmark.extra_info["triples"] = len(graph)
