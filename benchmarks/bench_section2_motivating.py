"""Experiment E2 — the motivating queries of Section 2.

Reproduces the running scenarios: the author query over G1/G4 (owl:sameAs
library rules), blank-node invention for co-authors over G2, and the
transport-service reachability query over growing synthetic networks (the
query SPARQL 1.1 property paths cannot express).
"""

import pytest

from repro.core.evaluation import evaluate
from repro.core.triqlite import TriQLiteQuery
from repro.datalog.parser import parse_program
from repro.workloads.graphs import section2_g2, section2_g4, transport_network

TRANSPORT_PROGRAM = """
    triple(?X, partOf, transportService) -> ts(?X).
    triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
    ts(?T), triple(?X, ?T, ?Y) -> query(?X, ?Y).
    ts(?T), triple(?X, ?T, ?Z), query(?Z, ?Y) -> query(?X, ?Y).
"""

SAMEAS_PROGRAM = """
    triple(?X, ?Y, ?Z) -> triple2(?X, ?Y, ?Z).
    triple(?X, owl:sameAs, ?Y), triple(?Y, owl:sameAs, ?Z) -> triple2(?X, owl:sameAs, ?Z).
    triple2(?X1, owl:sameAs, ?X2), triple2(?X1, ?U, ?Y1) -> triple2(?X2, ?U, ?Y1).
    triple2(?Y1, owl:sameAs, ?Y2), triple2(?X1, ?U, ?Y1) -> triple2(?X1, ?U, ?Y2).
    triple2(?Y, is_author_of, ?Z), triple2(?Y, name, ?X) -> answer(?X).
"""

COAUTHOR_PROGRAM = """
    triple(?X, is_coauthor_of, ?Y) ->
        exists ?Z . triple2(?X, is_author_of, ?Z), triple2(?Y, is_author_of, ?Z).
"""


def test_section2_sameas_author_query(benchmark):
    """Query (1) over G4 with the fixed owl:sameAs rule library included."""
    database = section2_g4().to_database()
    answers = benchmark(lambda: evaluate(SAMEAS_PROGRAM, "answer", database))
    assert {a.value for (a,) in answers} == {"Jeffrey Ullman"}


def test_section2_blank_node_invention(benchmark):
    """Query (4): co-authors share one invented publication."""
    program = parse_program(COAUTHOR_PROGRAM)
    query = TriQLiteQuery(program, "triple2", output_arity=3)
    database = section2_g2().to_database()

    result = benchmark(lambda: query.materialise(database))
    invented = list(result.instance.with_predicate("triple2"))
    assert len(invented) == 2
    assert len({atom.terms[2] for atom in invented}) == 1


@pytest.mark.parametrize("n_cities", [5, 15, 30])
def test_section2_transport_reachability(benchmark, n_cities):
    """Transport reachability over growing networks: all i<j city pairs are found."""
    graph, cities = transport_network(n_cities, n_services=3, hierarchy_depth=3, seed=1)
    database = graph.to_database()

    answers = benchmark(lambda: evaluate(TRANSPORT_PROGRAM, "query", database))
    expected = n_cities * (n_cities - 1) // 2
    assert len(answers) == expected
    benchmark.extra_info["cities"] = n_cities
    benchmark.extra_info["reachable_pairs"] = len(answers)
