"""Experiment L6.5/6.6 — the unbounded ground-connection property.

Lemma 6.5: a good-candidate language must connect one invented null to an
unbounded number of database constants; the warded program tau_owl2ql_core
does exactly that on the chain ontologies O_n (mgc grows with n).  Lemma 6.6:
nearly frontier-guarded Datalog∃ cannot (mgc stays bounded).  The benchmark
computes the mgc series for both and asserts the two shapes.
"""

from repro.analysis.ugcp import is_series_bounded, mgc_series
from repro.datalog.parser import parse_program
from repro.owl.entailment_rules import owl2ql_core_program
from repro.workloads.ontologies import chain_ontology_graph

SIZES = [1, 2, 4, 8]

#: A (nearly) frontier-guarded program over the same schema: the invented null
#: only ever co-occurs with the constants of the single guard atom.
FRONTIER_GUARDED_PROGRAM = """
    triple(?X, rdf:type, ?Y) -> exists ?Z . witness(?X, ?Y, ?Z).
    triple(?X, rdfs:subClassOf, ?Y) -> sub(?X, ?Y).
    sub(?X, ?Y), sub(?Y, ?Z) -> sub(?X, ?Z).
"""


def test_lemma65_warded_mgc_is_unbounded(benchmark):
    program = owl2ql_core_program()

    def series():
        return mgc_series(
            program, lambda n: chain_ontology_graph(n).to_database(), SIZES
        )

    values = benchmark.pedantic(series, rounds=1, iterations=1)
    mgc = [v for _, v in values]
    assert mgc == sorted(mgc) and mgc[-1] > mgc[0]
    assert not is_series_bounded(values)
    benchmark.extra_info["series"] = values


def test_lemma66_nearly_frontier_guarded_mgc_is_bounded(benchmark):
    program = parse_program(FRONTIER_GUARDED_PROGRAM)

    def series():
        return mgc_series(
            program, lambda n: chain_ontology_graph(n).to_database(), SIZES
        )

    values = benchmark.pedantic(series, rounds=1, iterations=1)
    assert is_series_bounded(values, tolerance=0)
    benchmark.extra_info["series"] = values
