"""Experiment T5.3 / C5.4 — SPARQL under the OWL 2 QL core entailment regime.

Theorem 5.3: ⟦P⟧^U_G = ⟦(P^U_dat, tau_db(G))⟧, and P^U_dat is a TriQ-Lite 1.0
query (Corollaries 5.4 / 6.2).  The benchmark evaluates class/role queries
through the fixed program + warded engine and cross-checks every answer set
against the independent DL-Lite_R oracle.
"""

import pytest

from repro.datalog.terms import Variable
from repro.owl.dllite import DLLiteReasoner
from repro.owl.model import NamedClass
from repro.owl.rdf_mapping import ontology_to_graph
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import (
    entailment_regime_query,
    evaluate_under_entailment,
)
from repro.workloads.ontologies import university_ontology

X = Variable("X")

CLASS_QUERIES = ["Person", "Student", "Faculty", "Employee", "Course", "Department"]


@pytest.mark.parametrize("departments", [1, 2])
def test_theorem53_entailment_regime_matches_oracle(benchmark, departments):
    ontology = university_ontology(n_departments=departments, students_per_department=8)
    graph = ontology_to_graph(ontology)
    reasoner = DLLiteReasoner(ontology)
    queries = {
        name: parse_sparql(f"SELECT ?X WHERE {{ ?X rdf:type {name} }}")
        for name in CLASS_QUERIES
    }

    def evaluate_all():
        return {
            name: evaluate_under_entailment(query, graph, "U")
            for name, query in queries.items()
        }

    answers = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    for name, mappings in answers.items():
        datalog_individuals = {mapping[X] for mapping in mappings}
        oracle_individuals = set(reasoner.instances_of(NamedClass(name)))
        assert datalog_individuals == oracle_individuals, name
    benchmark.extra_info["departments"] = departments
    benchmark.extra_info["abox_triples"] = len(graph)
    benchmark.extra_info["answers_per_class"] = {
        name: len(mappings) for name, mappings in answers.items()
    }


def test_corollary54_translation_is_triq_lite(benchmark):
    """Building P^U_dat and validating TriQ-Lite 1.0 membership."""
    pattern = parse_sparql(
        "SELECT ?X WHERE { ?X rdf:type Student . ?X takesCourse _:B }"
    )

    def build():
        return entailment_regime_query(pattern, "U")

    query, translation = benchmark(build)
    assert query.report.is_triq_lite
    benchmark.extra_info["program_rules"] = len(translation.program.rules)
