"""Experiment T7.1/7.2 — program expressive power separation.

Theorem 7.1: the warded witness program separates (D, Λ1, ()) from
(D, Λ2, ()), while for every Datalog program the two memberships coexist.
The benchmark evaluates the warded witness and then sweeps a family of small
Datalog programs, checking the coexistence implication for each.
"""

import itertools

from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.reductions.expressiveness import (
    datalog_pep_coexistence,
    warded_pep_separation,
)


def test_theorem71_warded_witness_separates(benchmark):
    separation = benchmark(warded_pep_separation)
    assert separation.q1_holds and not separation.q2_holds


def _candidate_datalog_programs():
    """A brute-force family of single-rule Datalog programs over {p/1, s/2}."""
    X, Y = Variable("X"), Variable("Y")
    c = Constant("c")
    head_terms = [(X, X), (X, Y), (X, c), (c, c), (c, X)]
    bodies = [
        (Atom("p", (X,)),),
        (Atom("p", (X,)), Atom("p", (Y,))),
        (Atom("s", (X, Y)),),
    ]
    programs = []
    for body, head in itertools.product(bodies, head_terms):
        body_vars = {v for atom in body for v in atom.variables}
        if not {t for t in head if isinstance(t, Variable)} <= body_vars:
            continue
        try:
            programs.append(Program([Rule(body, (Atom("s", head),))]))
        except Exception:
            continue
    return programs


def test_theorem71_datalog_programs_cannot_separate(benchmark):
    programs = _candidate_datalog_programs()
    assert len(programs) >= 10

    def check_all():
        return [datalog_pep_coexistence(program) for program in programs]

    results = benchmark.pedantic(check_all, rounds=1, iterations=1)
    assert all(results)
    benchmark.extra_info["programs_checked"] = len(programs)
