"""Experiment BASE — baselines for the entailment workload.

Compares three ways of answering the Section 2 author query over the G3-style
restriction ontology (scaled up):

1. **TriQ-Lite 1.0 / warded engine** with the fixed tau_owl2ql_core library
   (the paper's proposal) — the ontology semantics is *not* encoded in the query;
2. **generic chase** evaluation of the very same program (the Section 3.2
   semantics executed naively);
3. **plain Datalog¬s baseline**: the user manually rewrites the query to
   mention the restriction vocabulary (the paper's "complicated query" from
   Section 2), evaluated by semi-naive Datalog without any ontology rules.

All three must return the same authors; the point of the comparison is that
(1) keeps the query simple and stays in the same ballpark as the hand-written
baseline, which is the practical pitch of TriQ-Lite 1.0.
"""

import pytest

from repro.core.warded_engine import WardedEngine
from repro.datalog.chase import ChaseEngine
from repro.datalog.parser import parse_program
from repro.datalog.semantics import StratifiedSemantics
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.owl.entailment_rules import owl2ql_core_program
from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import RDF
from repro.workloads.graphs import section2_g3

#: The simple author query (the user's view under the entailment regime).
SIMPLE_QUERY = parse_program(
    """
    triple1(?Y, is_author_of, ?Z), triple1(?Y, name, ?X), C(?X) -> answer(?X).
    """
)

#: The hand-rewritten baseline: no reasoning engine, so the user must encode
#: every inference the ontology would have provided (here: co-authors are
#: authors of something, and r1-typed resources are authors) directly in the
#: query — exactly the burden Section 2 argues against.
HAND_REWRITTEN = parse_program(
    """
    triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> answer(?X).
    triple(?Y, is_coauthor_of, ?W), triple(?Y, name, ?X) -> answer(?X).
    triple(?Y, rdf:type, r1), triple(?Y, name, ?X) -> answer(?X).
    """
)


def scaled_author_graph(n_authors: int) -> RDFGraph:
    """G3 extended with n further co-authors."""
    graph = section2_g3()
    for i in range(n_authors):
        graph.add((f"author{i}", "is_coauthor_of", "dbUllman"))
        graph.add((f"author{i}", "name", f"Author {i}"))
        graph.add((f"author{i}", RDF.type, "r1"))
    return graph


def _answers(instance, predicate="answer"):
    return {atom.terms[0].value for atom in instance.with_predicate(predicate) if atom.is_ground}


@pytest.mark.parametrize("n_authors", [5, 20])
def test_baseline_triqlite_warded_engine(benchmark, n_authors):
    graph = scaled_author_graph(n_authors)
    program = owl2ql_core_program().union(SIMPLE_QUERY)
    database = graph.to_database()

    instance = benchmark.pedantic(
        lambda: WardedEngine(program, check_warded=False).ground_semantics(database),
        rounds=1,
        iterations=1,
    )
    answers = _answers(instance)
    assert "Alfred Aho" in answers and "Jeffrey Ullman" in answers
    assert len(answers) == 2 + n_authors
    benchmark.extra_info["authors_found"] = len(answers)


@pytest.mark.parametrize("n_authors", [5])
def test_baseline_generic_chase(benchmark, n_authors):
    graph = scaled_author_graph(n_authors)
    program = owl2ql_core_program().union(SIMPLE_QUERY)
    database = graph.to_database()
    semantics = StratifiedSemantics(program, ChaseEngine(max_steps=2_000_000))

    instance = benchmark.pedantic(
        lambda: semantics.materialise(database), rounds=1, iterations=1
    )
    answers = _answers(instance)
    assert len(answers) == 2 + n_authors
    benchmark.extra_info["authors_found"] = len(answers)


@pytest.mark.parametrize("n_authors", [5, 20])
def test_baseline_hand_rewritten_datalog(benchmark, n_authors):
    graph = scaled_author_graph(n_authors)
    database = graph.to_database()
    evaluator = SemiNaiveEvaluator(HAND_REWRITTEN)

    instance = benchmark.pedantic(lambda: evaluator.evaluate(database), rounds=1, iterations=1)
    answers = _answers(instance)
    assert len(answers) == 2 + n_authors
    benchmark.extra_info["authors_found"] = len(answers)
