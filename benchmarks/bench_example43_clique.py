"""Experiment E4.3 — the k-clique query of Example 4.3.

Reproduces the example: the fixed-per-k TriQ 1.0 program decides k-clique
containment, agreeing with brute force on random graphs.
"""

import pytest

from repro.reductions.clique import contains_clique, contains_clique_bruteforce
from repro.workloads.graphs import random_undirected_graph


@pytest.mark.parametrize("n,k", [(4, 2), (4, 3), (5, 3)])
def test_example43_clique_query(benchmark, n, k):
    edges = random_undirected_graph(n, 0.6, seed=n * 10 + k)
    expected = contains_clique_bruteforce(edges, k)

    result = benchmark.pedantic(
        lambda: contains_clique(edges, k), rounds=1, iterations=1
    )
    assert result == expected
    benchmark.extra_info["n"] = n
    benchmark.extra_info["k"] = k
    benchmark.extra_info["has_clique"] = expected
