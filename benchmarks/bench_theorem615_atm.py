"""Experiment T6.15 — the ATM reduction for warded Datalog∃ with minimal interaction.

Theorem 6.15 is a lower bound, so it cannot be "measured"; what can be checked
is that the reduction is faithful (datalog acceptance = direct ATM acceptance)
and that the fixed program falls exactly in the relaxed class (minimal
interaction, not warded).  The benchmark runs the reduction on small machines.
"""

import pytest

from repro.analysis.guards import classify_program
from repro.reductions.atm import (
    ACCEPT_STATE,
    REJECT_STATE,
    AlternatingTuringMachine,
    Transition,
    atm_accepts_directly,
    atm_accepts_via_datalog,
    atm_program,
)

MACHINES = {
    "exists-accepting": AlternatingTuringMachine(
        existential_states=frozenset({"s0"}),
        universal_states=frozenset(),
        transitions=(
            Transition("s0", "1", (ACCEPT_STATE, "1", +1), (REJECT_STATE, "1", +1)),
        ),
        initial_state="s0",
    ),
    "forall-rejecting": AlternatingTuringMachine(
        existential_states=frozenset(),
        universal_states=frozenset({"s0"}),
        transitions=(
            Transition("s0", "1", (ACCEPT_STATE, "1", +1), (REJECT_STATE, "1", +1)),
        ),
        initial_state="s0",
    ),
    "two-step": AlternatingTuringMachine(
        existential_states=frozenset({"s0"}),
        universal_states=frozenset({"s1"}),
        transitions=(
            Transition("s0", "1", ("s1", "1", +1), ("s1", "1", +1)),
            Transition("s1", "1", (ACCEPT_STATE, "1", -1), (ACCEPT_STATE, "1", -1)),
            Transition("s1", "0", (REJECT_STATE, "0", -1), (REJECT_STATE, "0", -1)),
        ),
        initial_state="s0",
    ),
}


def test_theorem615_program_class(benchmark):
    report = benchmark(lambda: classify_program(atm_program()))
    assert report.warded_minimal_interaction and not report.warded


@pytest.mark.parametrize("name", sorted(MACHINES))
@pytest.mark.parametrize("tape", [["1", "1"], ["1", "0"]])
def test_theorem615_reduction_is_faithful(benchmark, name, tape):
    machine = MACHINES[name]
    expected = atm_accepts_directly(machine, tape)

    accepted = benchmark.pedantic(
        lambda: atm_accepts_via_datalog(machine, tape, depth=4), rounds=1, iterations=1
    )
    assert accepted == expected
    benchmark.extra_info["machine"] = name
    benchmark.extra_info["tape"] = "".join(tape)
    benchmark.extra_info["accepts"] = expected
