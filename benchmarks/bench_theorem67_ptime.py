"""Experiment T6.7 — PTime data complexity of TriQ-Lite 1.0.

Theorem 6.7: Eval for TriQ-Lite 1.0 is PTime-complete in data complexity.
The benchmark runs the fixed entailment-regime query (program fixed = data
complexity) over university ABoxes of growing size and fits the growth
exponent of the warded engine's runtime and output: it must look polynomial
with a small exponent, in sharp contrast with the T4.4 series.
"""

import math
import time

import pytest

from repro.owl.rdf_mapping import ontology_to_graph
from repro.sparql.parser import parse_sparql
from repro.translation.entailment_regime import entailment_regime_query
from repro.workloads.ontologies import university_ontology

QUERY_TEXT = "SELECT ?X WHERE { ?X rdf:type Person }"
SCALES = [(1, 5), (2, 10), (3, 20)]


def _database(departments, students):
    ontology = university_ontology(
        n_departments=departments, students_per_department=students
    )
    return ontology_to_graph(ontology).to_database()


@pytest.mark.parametrize("departments,students", SCALES)
def test_theorem67_fixed_query_growing_data(benchmark, departments, students):
    query, _ = entailment_regime_query(parse_sparql(QUERY_TEXT), "U")
    database = _database(departments, students)

    answers = benchmark.pedantic(lambda: query.evaluate(database), rounds=1, iterations=1)
    assert answers and answers is not None
    benchmark.extra_info["triples"] = len(database)
    benchmark.extra_info["answers"] = len(answers)


def test_theorem67_growth_exponent_is_polynomial(benchmark):
    """Fit log(time) against log(data size): the exponent stays small (< 3)."""
    query, _ = entailment_regime_query(parse_sparql(QUERY_TEXT), "U")

    def measure():
        points = []
        for departments, students in SCALES:
            database = _database(departments, students)
            start = time.perf_counter()
            answers = query.evaluate(database)
            elapsed = time.perf_counter() - start
            points.append((len(database), max(elapsed, 1e-4), len(answers)))
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    (n0, t0, _), (n1, t1, _) = points[0], points[-1]
    exponent = math.log(t1 / t0) / math.log(n1 / n0)
    assert exponent < 3.0, f"runtime grows with exponent {exponent:.2f}; expected polynomial"
    # Answers grow linearly with the ABox.
    assert points[-1][2] > points[0][2]
    benchmark.extra_info["points"] = points
    benchmark.extra_info["fitted_exponent"] = round(exponent, 2)
