"""Service series — concurrent read/write throughput over the materialized view.

The schema-v6 scenario: a single writer pushes delta batches into a
:class:`~repro.service.MaterializedView` while reader threads answer
entailment-regime queries against pinned snapshots.  The workload is fixed
(N batches, M queries per reader), so the engine counters stay deterministic
across execution modes; the measured section reports queries-per-second and
p50/p99 per-query latency through ``benchmark.extra_info``, which the
harness lifts into first-class gated columns.
"""

import threading
import time

from repro.sparql.parser import parse_sparql
from repro.workloads.ontologies import university_graph

QUERY_TEXTS = (
    "SELECT ?X WHERE { ?X rdf:type Person }",
    "SELECT ?X WHERE { ?X rdf:type Student }",
    "SELECT ?X WHERE { ?X takesCourse ?Y }",
    "SELECT ?X WHERE { ?X worksFor _:B }",
)

N_BATCHES = 8
QUERIES_PER_READER = 32
N_READERS = 2


def _batches():
    return [
        [
            (f"delta_student_{i}", "rdf:type", "Student"),
            (f"delta_student_{i}", "takesCourse", f"course_0_{i % 4}"),
        ]
        for i in range(N_BATCHES)
    ]


def test_concurrent_read_write(benchmark):
    from repro.service import MaterializedView

    graph = university_graph(n_departments=1, students_per_department=5)
    queries = [parse_sparql(text) for text in QUERY_TEXTS]
    batches = _batches()

    def workload():
        view = MaterializedView(graph)
        latencies = []
        lock = threading.Lock()
        errors = []

        def writer():
            try:
                for batch in batches:
                    view.push(batch)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def reader(offset):
            try:
                local = []
                for i in range(QUERIES_PER_READER):
                    query = queries[(offset + i) % len(queries)]
                    start = time.perf_counter()
                    view.query(query, "U")
                    local.append(time.perf_counter() - start)
                with lock:
                    latencies.extend(local)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader, args=(n,)) for n in range(N_READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        view.close()
        if errors:
            raise errors[0]
        return latencies

    start = time.perf_counter()
    latencies = benchmark.pedantic(workload, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    total_queries = N_READERS * QUERIES_PER_READER
    assert len(latencies) == total_queries
    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, (len(latencies) * 99) // 100)]
    benchmark.extra_info["qps"] = round(total_queries / elapsed, 1)
    benchmark.extra_info["latency_p50_ms"] = round(p50 * 1000, 3)
    benchmark.extra_info["latency_p99_ms"] = round(p99 * 1000, 3)
    benchmark.extra_info["queries"] = total_queries
    benchmark.extra_info["push_batches"] = N_BATCHES
    benchmark.extra_info["readers"] = N_READERS
