#!/usr/bin/env python
"""Single-runner benchmark harness for every ``bench_*.py`` scenario.

Runs all benchmark scenarios in-process with warmup and repeats, samples the
engine-core counters (:mod:`repro.engine.stats`) around each measured
section, and writes ``BENCH_engine_core.json`` in a stable schema that CI
diffs against the committed baseline.

The ``bench_*.py`` files stay plain pytest-benchmark suites; the harness
discovers their ``test_*`` functions, expands ``pytest.mark.parametrize``
marks itself, and injects a proxy ``benchmark`` fixture, so the same
scenarios run identically under ``pytest`` and under this runner — but here
with controlled warmup/repeat counts and no pytest overhead.  Only the
benchmarked callable is timed; scenario setup (ontology generation, graph
construction, translation that the test performs outside ``benchmark``)
stays out of the measured section.

Usage::

    python benchmarks/harness.py                      # full run, writes BENCH_engine_core.json
    python benchmarks/harness.py --quick              # 1 warmup + 2 repeats, writes nothing
    python benchmarks/harness.py --quick --baseline BENCH_engine_core.json
                                                      # CI smoke: fail on >25% regression
    python benchmarks/harness.py --only theorem67     # substring filter
    python benchmarks/harness.py --list               # show scenario ids and exit

See ``benchmarks/README.md`` for the JSON schema and the CI contract.
"""

from __future__ import annotations

import argparse
import importlib.util
import itertools
import json
import os
import statistics
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SRC = os.path.join(REPO_ROOT, "src")
for path in (SRC, BENCH_DIR):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.engine.stats import STATS  # noqa: E402

SCHEMA_VERSION = 1
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_engine_core.json")
#: Regressions smaller than this (seconds) never fail the gate: scenarios in
#: the low-millisecond range jitter far more than 25% on shared CI runners.
MIN_REGRESSION_SECONDS = 0.010


class HarnessBenchmark:
    """Stand-in for the pytest-benchmark fixture.

    Times exactly one invocation of the benchmarked callable per test-function
    call (the harness drives warmup/repeats by re-invoking the test function),
    and snapshots the engine counters around the measured section.
    """

    def __init__(self) -> None:
        self.extra_info: Dict[str, Any] = {}
        self.wall_seconds: Optional[float] = None
        self.stats: Dict[str, int] = {}

    def _measure(self, fn: Callable, args: tuple, kwargs: dict) -> Any:
        STATS.reset()
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.wall_seconds = time.perf_counter() - start
        self.stats = STATS.snapshot()
        return result

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        return self._measure(fn, args, kwargs)

    def pedantic(
        self,
        fn: Callable,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        rounds: int = 1,
        iterations: int = 1,
        warmup_rounds: int = 0,
    ) -> Any:
        return self._measure(fn, args, kwargs or {})


def _load_module(path: str):
    name = os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _param_id(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "-".join(_param_id(v) for v in value)
    return str(value)


def _expand_parametrize(fn: Callable) -> List[Tuple[str, Dict[str, Any]]]:
    """Expand stacked ``pytest.mark.parametrize`` marks into (id, kwargs) pairs."""
    marks = [
        mark
        for mark in getattr(fn, "pytestmark", [])
        if getattr(mark, "name", None) == "parametrize"
    ]
    if not marks:
        return [("", {})]
    # Stacked marks multiply; pytest applies the closest decorator first, so
    # iterate in reverse to match its id order.
    axes: List[List[Tuple[str, Dict[str, Any]]]] = []
    for mark in reversed(marks):
        argnames, argvalues = mark.args[0], mark.args[1]
        names = [n.strip() for n in argnames.split(",")]
        cases: List[Tuple[str, Dict[str, Any]]] = []
        for value in argvalues:
            values = getattr(value, "values", None)
            if values is not None and hasattr(value, "marks"):  # pytest.param
                value = values if len(names) > 1 else values[0]
            if len(names) == 1:
                cases.append((_param_id(value), {names[0]: value}))
            else:
                cases.append(
                    (_param_id(value), dict(zip(names, value)))
                )
        axes.append(cases)
    expanded: List[Tuple[str, Dict[str, Any]]] = []
    for combo in itertools.product(*axes):
        ident = "-".join(part for part, _ in combo)
        kwargs: Dict[str, Any] = {}
        for _, case_kwargs in combo:
            kwargs.update(case_kwargs)
        expanded.append((ident, kwargs))
    return expanded


def discover_scenarios(only: Optional[str] = None) -> List[Dict[str, Any]]:
    """All (file, function, params) scenarios of the ``bench_*.py`` suite."""
    scenarios: List[Dict[str, Any]] = []
    for filename in sorted(os.listdir(BENCH_DIR)):
        if not filename.startswith("bench_") or not filename.endswith(".py"):
            continue
        module = _load_module(os.path.join(BENCH_DIR, filename))
        for attr in sorted(dir(module)):
            if not attr.startswith("test_"):
                continue
            fn = getattr(module, attr)
            if not callable(fn):
                continue
            for ident, kwargs in _expand_parametrize(fn):
                scenario_id = f"{filename}::{attr}" + (f"[{ident}]" if ident else "")
                if only and only not in scenario_id:
                    continue
                scenarios.append(
                    {"id": scenario_id, "file": filename, "fn": fn, "kwargs": kwargs}
                )
    return scenarios


def run_scenario(
    scenario: Dict[str, Any], warmup: int, repeats: int
) -> Dict[str, Any]:
    """Run one scenario ``warmup + repeats`` times; keep the measured runs."""
    runs: List[float] = []
    record: Dict[str, Any] = {"id": scenario["id"], "file": scenario["file"]}
    proxy = HarnessBenchmark()
    for i in range(warmup + repeats):
        proxy = HarnessBenchmark()
        scenario["fn"](benchmark=proxy, **scenario["kwargs"])
        if proxy.wall_seconds is None:
            raise RuntimeError(
                f"{scenario['id']} never invoked the benchmark fixture"
            )
        if i >= warmup:
            runs.append(proxy.wall_seconds)
    median = statistics.median(runs)
    last_stats = proxy.stats
    record.update(
        {
            "wall_seconds": {
                "median": round(median, 6),
                "min": round(min(runs), 6),
                "runs": [round(r, 6) for r in runs],
            },
            "facts_added": last_stats["facts_added"],
            "chase_steps": last_stats["triggers_fired"],
            "nulls_invented": last_stats["nulls_invented"],
            "facts_per_second": (
                round(last_stats["facts_added"] / median) if median > 0 else None
            ),
            "extra": {
                k: v
                for k, v in sorted(proxy.extra_info.items())
                if isinstance(v, (int, float, str, bool))
            },
        }
    )
    return record


def compare_to_baseline(
    results: List[Dict[str, Any]],
    baseline: Dict[str, Any],
    threshold: float,
    min_delta: float,
) -> List[str]:
    """Regression messages for scenarios slower than baseline by > threshold.

    The baseline may have been recorded on a different machine, so raw wall
    times are not comparable; comparisons are normalised by the overall speed
    ratio between the two runs (sum of medians over the shared scenarios).
    A regression is then a scenario that got slower *relative to the rest of
    the suite* — which is machine-independent — by more than ``threshold``
    and by more than ``min_delta`` (speed-adjusted) in absolute terms.
    """
    baseline_by_id = {s["id"]: s for s in baseline.get("scenarios", [])}
    shared = [
        (record, baseline_by_id[record["id"]])
        for record in results
        if record["id"] in baseline_by_id
    ]
    if not shared:
        return []
    current_sum = sum(r["wall_seconds"]["median"] for r, _ in shared)
    baseline_sum = sum(b["wall_seconds"]["median"] for _, b in shared)
    if baseline_sum <= 0:
        return []
    speed_ratio = current_sum / baseline_sum  # >1 when this machine/run is slower overall
    regressions: List[str] = []
    for record, base in shared:
        current = record["wall_seconds"]["median"]
        reference = base["wall_seconds"]["median"] * speed_ratio
        if current > reference * (1 + threshold) and current - reference > min_delta:
            regressions.append(
                f"{record['id']}: {current * 1000:.1f}ms vs speed-adjusted baseline "
                f"{reference * 1000:.1f}ms (+{(current / reference - 1) * 100:.0f}%, "
                f"suite speed ratio {speed_ratio:.2f})"
            )
        # The engine counters are deterministic and machine-independent, so
        # they need no speed adjustment and catch what normalised wall time
        # cannot: a uniform algorithmic regression across the whole suite
        # (e.g. the compiled core suddenly firing more triggers everywhere).
        for counter in ("chase_steps", "facts_added", "nulls_invented"):
            now, then = record.get(counter), base.get(counter)
            if now is None or not then:
                continue
            if now > then * (1 + threshold) and now - then > 50:
                regressions.append(
                    f"{record['id']}: {counter} {now} vs baseline {then} "
                    f"(+{(now / then - 1) * 100:.0f}%)"
                )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--quick", action="store_true", help="1 warmup + 2 repeats")
    parser.add_argument("--warmup", type=int, default=None, help="warmup runs per scenario")
    parser.add_argument("--repeats", type=int, default=None, help="measured runs per scenario")
    parser.add_argument("--only", default=None, help="substring filter on scenario ids")
    parser.add_argument("--list", action="store_true", help="list scenario ids and exit")
    parser.add_argument(
        "--output",
        default=None,
        help=f"JSON output path (default: {os.path.relpath(DEFAULT_OUTPUT, REPO_ROOT)}; "
        "suppressed when --baseline is given unless set explicitly)",
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline JSON to diff against (CI gate)"
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=0.25,
        help="relative slowdown vs baseline that fails the gate (default 0.25)",
    )
    args = parser.parse_args(argv)

    warmup = args.warmup if args.warmup is not None else 1
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 5)

    scenarios = discover_scenarios(args.only)
    if args.list:
        for scenario in scenarios:
            print(scenario["id"])
        return 0
    if not scenarios:
        print("no scenarios matched", file=sys.stderr)
        return 2

    results: List[Dict[str, Any]] = []
    total_start = time.perf_counter()
    for scenario in scenarios:
        record = run_scenario(scenario, warmup, repeats)
        results.append(record)
        wall = record["wall_seconds"]["median"]
        print(f"{record['id']:78s} {wall * 1000:9.2f} ms  "
              f"{record['facts_added']:>8d} facts")
    total_wall = time.perf_counter() - total_start

    document = {
        "schema_version": SCHEMA_VERSION,
        "mode": "quick" if args.quick else "full",
        "warmup": warmup,
        "repeats": repeats,
        "python": ".".join(map(str, sys.version_info[:3])),
        "scenario_count": len(results),
        "scenarios": results,
        "totals": {
            "wall_seconds_median_sum": round(
                sum(r["wall_seconds"]["median"] for r in results), 6
            ),
            "facts_added": sum(r["facts_added"] for r in results),
            "chase_steps": sum(r["chase_steps"] for r in results),
            "nulls_invented": sum(r["nulls_invented"] for r in results),
        },
    }
    print(f"\n{len(results)} scenarios, "
          f"median-sum {document['totals']['wall_seconds_median_sum']:.3f}s, "
          f"harness wall {total_wall:.1f}s")

    # Only a full, unfiltered run may implicitly overwrite the committed
    # baseline; quick/filtered runs write only with an explicit --output.
    output = args.output
    if output is None and args.baseline is None and not args.quick and not args.only:
        output = DEFAULT_OUTPUT
    if output:
        with open(output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {os.path.relpath(output, os.getcwd())}")

    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline {args.baseline}: {error}", file=sys.stderr)
            return 2
        regressions = compare_to_baseline(
            results, baseline, args.fail_threshold, MIN_REGRESSION_SECONDS
        )
        missing = {s["id"] for s in baseline.get("scenarios", [])} - {
            r["id"] for r in results
        }
        if args.only is None and missing:
            print(f"warning: {len(missing)} baseline scenarios did not run: "
                  + ", ".join(sorted(missing)[:5]))
        if regressions:
            print(f"\nFAIL: {len(regressions)} regression(s) vs {args.baseline}:")
            for line in regressions:
                print("  " + line)
            return 1
        print(f"\nOK: no scenario regressed more than "
              f"{args.fail_threshold * 100:.0f}% vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
