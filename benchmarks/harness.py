#!/usr/bin/env python
"""Single-runner benchmark harness for every ``bench_*.py`` scenario.

Runs all benchmark scenarios in-process with warmup and repeats, samples the
engine-core counters (:mod:`repro.engine.stats`) around each measured
section, and writes ``BENCH_engine_core.json`` in a stable schema that CI
diffs against the committed baseline.

Every scenario runs once per **execution mode** (row-at-a-time,
column-at-a-time batch, and the sharded parallel executor; see
:mod:`repro.engine.mode`), producing one record per ``scenario@mode`` id
(parallel records additionally carry the worker count).  Besides the
per-mode wall times — which is how the batch and parallel executors'
speedups are tracked in the committed baseline — the harness enforces the
cross-mode counter contract: the mode-independent counters (facts added,
triggers fired, nulls invented, pivots skipped, and the retraction trio of
facts retracted / re-derived / nulls collected) must be *identical* across
every mode of a scenario, and the run fails otherwise.  That equality is
what keeps the bench-smoke counter gate meaningful with three executors
behind one baseline.

The ``bench_*.py`` files stay plain pytest-benchmark suites; the harness
discovers their ``test_*`` functions, expands ``pytest.mark.parametrize``
marks itself, and injects a proxy ``benchmark`` fixture, so the same
scenarios run identically under ``pytest`` and under this runner — but here
with controlled warmup/repeat counts and no pytest overhead.  Only the
benchmarked callable is timed; scenario setup (ontology generation, graph
construction, translation that the test performs outside ``benchmark``)
stays out of the measured section.

Usage::

    python benchmarks/harness.py                      # full run, writes BENCH_engine_core.json
    python benchmarks/harness.py --quick              # 1 warmup + 3 repeats, writes nothing
    python benchmarks/harness.py --quick --baseline BENCH_engine_core.json
                                                      # CI smoke: fail on >25% regression
    python benchmarks/harness.py --only theorem67     # substring filter
    python benchmarks/harness.py --modes batch        # only one executor
    python benchmarks/harness.py --workers 4          # parallel-mode pool size
    python benchmarks/harness.py --quick --only lubm --profile profile.json
                                                      # per-plan step profiles
    python benchmarks/harness.py --list               # show scenario ids and exit

See ``benchmarks/README.md`` for the JSON schema and the CI contract.
"""

from __future__ import annotations

import argparse
import gc
import importlib.util
import itertools
import json
import os
import statistics
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SRC = os.path.join(REPO_ROOT, "src")
for path in (SRC, BENCH_DIR):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.engine import plancache  # noqa: E402
from repro.engine.mode import execution_mode  # noqa: E402
from repro.engine.parallel import shutdown_pool  # noqa: E402
from repro.engine.stats import STATS  # noqa: E402
from repro.obs.profile import PROFILER  # noqa: E402

SCHEMA_VERSION = 9
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_engine_core.json")
MODES = ("row", "batch", "parallel")
# An empty string counts as unset, matching repro.engine.mode (CI matrices
# export REPRO_ENGINE_PARALLEL='' for the non-parallel rows).
DEFAULT_WORKERS = int(os.environ.get("REPRO_ENGINE_PARALLEL") or 2)
#: Counters that must be identical between execution modes of one scenario.
MODE_INDEPENDENT_COUNTERS = (
    "facts_added",
    "chase_steps",
    "nulls_invented",
    "pivots_skipped",
    # Schema v7: the DRed retraction trio.  Defined on sets (the over-deleted
    # closure, the restored survivors, the orphaned nulls), so every executor
    # must account the deletion path identically.
    "retractions",
    "rederived",
    "nulls_collected",
)
#: Regressions smaller than this (seconds) never fail the gate: scenarios in
#: the low-millisecond range jitter far more than 25% on shared CI runners.
MIN_REGRESSION_SECONDS = 0.010
#: Parallel payload regressions smaller than this (bytes) never fail the
#: gate; tiny dispatches jitter with pickling details, big ones matter.
#: Schema v9 tightened this from 64 KiB to 8 KiB: with CSR postings sealed in
#: shared memory and sub-segment results riding the pooled worker ring, the
#: pipe should carry near-zero payload, so even modest growth is a real
#: protocol regression.
MIN_BYTES_REGRESSION = 8192


def _peak_rss_kb() -> Optional[int]:
    """The process high-water RSS in KiB (None where unavailable).

    ``ru_maxrss`` is a lifetime maximum, so per-record values are
    monotonically non-decreasing across a run; the per-scenario number
    answers "how much memory had the suite needed by the time this scenario
    finished", which is the regression-relevant shape for an in-process
    runner (a per-scenario reset is not possible without forking).
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return peak // 1024 if sys.platform == "darwin" else peak


class HarnessBenchmark:
    """Stand-in for the pytest-benchmark fixture.

    Times exactly one invocation of the benchmarked callable per test-function
    call (the harness drives warmup/repeats by re-invoking the test function),
    and snapshots the engine counters around the measured section.
    """

    def __init__(self) -> None:
        self.extra_info: Dict[str, Any] = {}
        self.wall_seconds: Optional[float] = None
        self.stats: Dict[str, int] = {}

    def _measure(self, fn: Callable, args: tuple, kwargs: dict) -> Any:
        # Flush collectable garbage from previous scenarios so a GC cycle
        # triggered by *their* allocations does not land inside this measured
        # section — the dominant source of run-to-run jitter for the
        # allocation-heavy scenarios.
        gc.collect()
        STATS.reset()
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.wall_seconds = time.perf_counter() - start
        self.stats = STATS.snapshot()
        return result

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        return self._measure(fn, args, kwargs)

    def pedantic(
        self,
        fn: Callable,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        rounds: int = 1,
        iterations: int = 1,
        warmup_rounds: int = 0,
    ) -> Any:
        return self._measure(fn, args, kwargs or {})


def _load_module(path: str):
    name = os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _param_id(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "-".join(_param_id(v) for v in value)
    return str(value)


def _expand_parametrize(fn: Callable) -> List[Tuple[str, Dict[str, Any]]]:
    """Expand stacked ``pytest.mark.parametrize`` marks into (id, kwargs) pairs."""
    marks = [
        mark
        for mark in getattr(fn, "pytestmark", [])
        if getattr(mark, "name", None) == "parametrize"
    ]
    if not marks:
        return [("", {})]
    # Stacked marks multiply; pytest applies the closest decorator first, so
    # iterate in reverse to match its id order.
    axes: List[List[Tuple[str, Dict[str, Any]]]] = []
    for mark in reversed(marks):
        argnames, argvalues = mark.args[0], mark.args[1]
        names = [n.strip() for n in argnames.split(",")]
        cases: List[Tuple[str, Dict[str, Any]]] = []
        for value in argvalues:
            values = getattr(value, "values", None)
            if values is not None and hasattr(value, "marks"):  # pytest.param
                value = values if len(names) > 1 else values[0]
            if len(names) == 1:
                cases.append((_param_id(value), {names[0]: value}))
            else:
                cases.append(
                    (_param_id(value), dict(zip(names, value)))
                )
        axes.append(cases)
    expanded: List[Tuple[str, Dict[str, Any]]] = []
    for combo in itertools.product(*axes):
        ident = "-".join(part for part, _ in combo)
        kwargs: Dict[str, Any] = {}
        for _, case_kwargs in combo:
            kwargs.update(case_kwargs)
        expanded.append((ident, kwargs))
    return expanded


def discover_scenarios() -> List[Dict[str, Any]]:
    """All (file, function, params) scenarios of the ``bench_*.py`` suite."""
    scenarios: List[Dict[str, Any]] = []
    for filename in sorted(os.listdir(BENCH_DIR)):
        if not filename.startswith("bench_") or not filename.endswith(".py"):
            continue
        module = _load_module(os.path.join(BENCH_DIR, filename))
        for attr in sorted(dir(module)):
            if not attr.startswith("test_"):
                continue
            fn = getattr(module, attr)
            if not callable(fn):
                continue
            for ident, kwargs in _expand_parametrize(fn):
                scenario_id = f"{filename}::{attr}" + (f"[{ident}]" if ident else "")
                scenarios.append(
                    {"id": scenario_id, "file": filename, "fn": fn, "kwargs": kwargs}
                )
    return scenarios


def select_runs(
    scenarios: List[Dict[str, Any]], modes: List[str], only: Optional[str]
) -> List[Tuple[Dict[str, Any], str]]:
    """The (scenario, mode) pairs to run.  ``--only`` matches the full
    ``scenario@mode`` record id, so any id printed by ``--list`` (or found in
    the baseline JSON) is a valid filter: ``--only theorem67`` selects both
    modes of the theorem67 scenarios, ``--only @batch`` selects every
    scenario's batch record, and a full record id selects exactly one run."""
    return [
        (scenario, mode)
        for scenario in scenarios
        for mode in modes
        if not only or only in f"{scenario['id']}@{mode}"
    ]


def run_scenario(
    scenario: Dict[str, Any], warmup: int, repeats: int, mode: str, workers: int
) -> Dict[str, Any]:
    """Run one scenario ``warmup + repeats`` times under ``mode``."""
    runs: List[float] = []
    record: Dict[str, Any] = {
        "id": f"{scenario['id']}@{mode}",
        "file": scenario["file"],
        "mode": mode,
        "workers": workers if mode == "parallel" else 1,
    }
    proxy = HarnessBenchmark()
    with execution_mode(mode, workers if mode == "parallel" else None):
        for i in range(warmup + repeats):
            proxy = HarnessBenchmark()
            scenario["fn"](benchmark=proxy, **scenario["kwargs"])
            if proxy.wall_seconds is None:
                raise RuntimeError(
                    f"{scenario['id']} never invoked the benchmark fixture"
                )
            if i >= warmup:
                runs.append(proxy.wall_seconds)
    median = statistics.median(runs)
    last_stats = proxy.stats
    record.update(
        {
            "wall_seconds": {
                "median": round(median, 6),
                "min": round(min(runs), 6),
                "runs": [round(r, 6) for r in runs],
            },
            "facts_added": last_stats["facts_added"],
            "chase_steps": last_stats["triggers_fired"],
            "nulls_invented": last_stats["nulls_invented"],
            "pivots_skipped": last_stats["pivots_skipped"],
            # Schema v7: the retraction trio (0 for insert-only scenarios).
            "retractions": last_stats["retractions"],
            "rederived": last_stats["rederived"],
            "nulls_collected": last_stats["nulls_collected"],
            "batch_probe_groups": last_stats["batch_probe_groups"],
            "parallel_tasks": last_stats["parallel_tasks"],
            "parallel_fallbacks": last_stats["parallel_fallbacks"],
            # Schema v5: the parallel IPC payload volume of the last measured
            # run (dictionary deltas + columnar fact/result arrays; 0 outside
            # parallel mode) and the process peak RSS sampled after the
            # scenario.
            "parallel_bytes_shipped": last_stats["parallel_bytes_shipped"],
            # Schema v8: bytes of match results moved through worker-created
            # shared-memory segments under the zero-copy attach protocol (0
            # outside parallel mode, or with REPRO_SHM=0).  Reported, never
            # gated — read together with parallel_bytes_shipped.
            "parallel_shm_bytes": last_stats["parallel_shm_bytes"],
            # Schema v9: synchronisation time split out of the dispatch wall
            # (sealing CSR postings + promoting columns + broadcasting the
            # sync message), worker postings rows rebuilt per-row (0 on the
            # CSR attach path — that zero is the whole point), and tombstone
            # compactions run by retraction sessions.  Reported, never gated.
            "parallel_sync_ms": round(last_stats["parallel_sync_ns"] / 1e6, 3),
            "postings_rebuilt": last_stats["postings_rebuilt"],
            "compactions": last_stats["compactions"],
            "peak_rss_kb": _peak_rss_kb(),
            "facts_per_second": (
                round(last_stats["facts_added"] / median) if median > 0 else None
            ),
            # Schema v4: first-class streaming columns.  ``delta_rounds`` is
            # the number of incremental delta rounds a streaming scenario
            # executed; ``incremental_speedup`` is recompute-per-arrival wall
            # time over the *measured* incremental wall time (min run, the
            # least noise-sensitive estimate).  Both are None for
            # non-streaming scenarios.
            "delta_rounds": proxy.extra_info.get("delta_rounds"),
            # Schema v6: first-class concurrent-service columns.  The
            # service scenarios report queries-per-second and p50/p99
            # per-query latency through extra_info; both are None for every
            # other scenario and gated against the baseline like wall time
            # (speed-adjusted; p99 is recorded but not gated — tail noise on
            # shared runners swamps it).
            "qps": proxy.extra_info.get("qps"),
            "latency_ms": (
                {
                    "p50": proxy.extra_info["latency_p50_ms"],
                    "p99": proxy.extra_info["latency_p99_ms"],
                }
                if "latency_p50_ms" in proxy.extra_info
                else None
            ),
            "incremental_speedup": (
                round(proxy.extra_info["recompute_seconds"] / min(runs), 2)
                if proxy.extra_info.get("recompute_seconds") and min(runs) > 0
                else None
            ),
            "extra": {
                k: v
                for k, v in sorted(proxy.extra_info.items())
                if isinstance(v, (int, float, str, bool))
            },
        }
    )
    return record


def merge_remeasure(record: Dict[str, Any], retry: Dict[str, Any]) -> Dict[str, Any]:
    """Fold an isolated re-measurement into ``record``, keeping the best case.

    Only the noise-sensitive wall-clock fields are merged (minimum wall time,
    maximum qps, minimum latency percentiles, maximum incremental speedup) —
    on a shared runner a transient CPU-steal burst can slow every repeat of
    the main pass, and the best of two independent passes is a strictly
    better estimate of the true cost.  The deterministic engine counters are
    deliberately left untouched: they are identical run to run, so a retry
    can never mask a genuine counter regression.
    """
    merged = dict(record)
    runs = sorted(record["wall_seconds"]["runs"] + retry["wall_seconds"]["runs"])
    merged["wall_seconds"] = {
        "median": round(statistics.median(runs), 6),
        "min": round(min(runs), 6),
        "runs": runs,
    }
    if retry.get("qps") is not None:
        merged["qps"] = max(record.get("qps") or 0, retry["qps"]) or None
    if retry.get("latency_ms") and record.get("latency_ms"):
        merged["latency_ms"] = {
            "p50": min(record["latency_ms"]["p50"], retry["latency_ms"]["p50"]),
            "p99": min(record["latency_ms"]["p99"], retry["latency_ms"]["p99"]),
        }
    if retry.get("incremental_speedup") is not None:
        merged["incremental_speedup"] = max(
            record.get("incremental_speedup") or 0, retry["incremental_speedup"]
        ) or None
    return merged


def cross_mode_mismatches(results: List[Dict[str, Any]]) -> List[str]:
    """Scenarios whose mode-independent counters differ between modes.

    All executors — row, batch, and sharded parallel — are required to fire
    the same triggers in the same order, so any divergence here is a
    correctness bug in an executor (or a nondeterministic scenario), never an
    acceptable perf trade-off.  Every mode present is compared against the
    first (in ``MODES`` order) that ran for the scenario.
    """
    by_scenario: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for record in results:
        base = record["id"].rsplit("@", 1)[0]
        by_scenario.setdefault(base, {})[record["mode"]] = record
    mismatches: List[str] = []
    for base, per_mode in sorted(by_scenario.items()):
        ran = [mode for mode in MODES if mode in per_mode]
        if len(ran) < 2:
            continue
        anchor_mode, anchor = ran[0], per_mode[ran[0]]
        for mode in ran[1:]:
            record = per_mode[mode]
            for counter in MODE_INDEPENDENT_COUNTERS:
                if anchor.get(counter) != record.get(counter):
                    mismatches.append(
                        f"{base}: {counter} {anchor_mode}={anchor.get(counter)} "
                        f"{mode}={record.get(counter)}"
                    )
    return mismatches


def compare_to_baseline(
    results: List[Dict[str, Any]],
    baseline: Dict[str, Any],
    threshold: float,
    min_delta: float,
) -> List[str]:
    """Regression messages for scenarios slower than baseline by > threshold.

    The baseline may have been recorded on a different machine, so raw wall
    times are not comparable; comparisons are normalised by the speed ratio
    between the two runs (sum of per-record *minimum* wall times over the
    shared records — the minimum is the least noise-sensitive estimate of a
    scenario's true cost, since timing noise on a shared runner is strictly
    one-sided).  Machine
    speed is mode-independent, so the ratio is anchored on the **row**
    records alone whenever both sides have them: if the batch executor
    uniformly loses its edge (e.g. the probe cache stops working) the row
    anchor stays put and every ``@batch`` record reads as a genuine relative
    regression, instead of the slowdown inflating a pooled "machine speed"
    ratio and hiding inside it.  (Pooled over all shared records is the
    fallback for single-mode runs and pre-mode baselines.)  A regression is
    then a record that got slower *relative to the anchor* — which is
    machine-independent — by more than ``threshold`` and by more than
    ``min_delta`` (speed-adjusted) in absolute terms.
    """
    baseline_by_id = {s["id"]: s for s in baseline.get("scenarios", [])}
    shared = [
        (record, baseline_by_id[record["id"]])
        for record in results
        if record["id"] in baseline_by_id
    ]
    if not shared:
        return []
    anchor = [
        (r, b) for r, b in shared if r.get("mode") == "row"
    ] or shared
    current_sum = sum(r["wall_seconds"]["min"] for r, _ in anchor)
    baseline_sum = sum(b["wall_seconds"]["min"] for _, b in anchor)
    if baseline_sum <= 0:
        return []
    speed_ratio = current_sum / baseline_sum  # >1 when this machine/run is slower overall
    regressions: List[str] = []
    for record, base in shared:
        current = record["wall_seconds"]["min"]
        reference = base["wall_seconds"]["min"] * speed_ratio
        if current > reference * (1 + threshold) and current - reference > min_delta:
            regressions.append(
                f"{record['id']}: {current * 1000:.1f}ms vs speed-adjusted baseline "
                f"{reference * 1000:.1f}ms (+{(current / reference - 1) * 100:.0f}%, "
                f"suite speed ratio {speed_ratio:.2f})"
            )
        # The engine counters are deterministic and machine-independent, so
        # they need no speed adjustment and catch what normalised wall time
        # cannot: a uniform algorithmic regression across the whole suite
        # (e.g. the compiled core suddenly firing more triggers everywhere).
        for counter in (
            "chase_steps",
            "facts_added",
            "nulls_invented",
            # Schema v7: over-deletion growing past the baseline means the
            # marking phase lost precision (deleting far more than the
            # retracted closure warrants) even when the end state is right.
            "retractions",
            "rederived",
        ):
            now, then = record.get(counter), base.get(counter)
            if now is None or not then:
                continue
            if now > then * (1 + threshold) and now - then > 50:
                regressions.append(
                    f"{record['id']}: {counter} {now} vs baseline {then} "
                    f"(+{(now / then - 1) * 100:.0f}%)"
                )
        # incremental_speedup (schema v4) is a within-run ratio, so it needs
        # no machine normalisation; it gates streaming scenarios against the
        # incremental path degenerating toward recomputation.  Halving the
        # baseline ratio (or dropping below break-even) fails; smaller noise
        # on the unmeasured recompute probe does not.  Scenarios whose
        # *baseline* sits below break-even pin a deliberately adverse regime
        # (the churn-heavy social windows, where DRed degenerates by design
        # and the engine's guard rebuilds cold); those get the halving gate
        # only — the scenario's own in-test ceiling owns the absolute bound.
        now, then = record.get("incremental_speedup"), base.get("incremental_speedup")
        if now is not None and then:
            floor = max(1.0, then * 0.5) if then >= 1.0 else then * 0.5
            if now < floor:
                regressions.append(
                    f"{record['id']}: incremental_speedup {now}x vs baseline {then}x"
                )
        # pivots_skipped gates in *both* directions (schema v7 widened the
        # historical drop-only gate).  A drop means the cost-based pivot
        # selection stopped skipping (delta rounds probing pivots they should
        # not) — invisible to the work counters above because skipped pivots
        # produce no triggers or facts.  A *rise* is the mirror failure: the
        # cost model refusing pivots it should probe, which silently shifts
        # work onto full-relation scans that the trigger counters, measuring
        # matches rather than probes, cannot see either.
        now, then = record.get("pivots_skipped"), base.get("pivots_skipped")
        if now is not None and then:
            if now < then * (1 - threshold) and then - now > 50:
                regressions.append(
                    f"{record['id']}: pivots_skipped {now} vs baseline {then} "
                    f"({(now / then - 1) * 100:.0f}%)"
                )
            elif now > then * (1 + threshold) and now - then > 50:
                regressions.append(
                    f"{record['id']}: pivots_skipped {now} vs baseline {then} "
                    f"(+{(now / then - 1) * 100:.0f}%, over-skipping)"
                )
        # Schema v6: the concurrent-service columns.  p50 latency is wall
        # clock, so it is speed-adjusted exactly like the scenario wall time;
        # QPS gates downward (a throughput *drop* is the regression) with the
        # inverse adjustment.  p99 is recorded but not gated.
        now_lat, then_lat = record.get("latency_ms"), base.get("latency_ms")
        if now_lat and then_lat and then_lat.get("p50"):
            reference = then_lat["p50"] * speed_ratio
            if (
                now_lat["p50"] > reference * (1 + threshold)
                and now_lat["p50"] - reference > min_delta * 1000
            ):
                regressions.append(
                    f"{record['id']}: latency p50 {now_lat['p50']:.1f}ms vs "
                    f"speed-adjusted baseline {reference:.1f}ms "
                    f"(+{(now_lat['p50'] / reference - 1) * 100:.0f}%)"
                )
        now, then = record.get("qps"), base.get("qps")
        if now is not None and then:
            reference = then / speed_ratio
            if now < reference * (1 - threshold) and reference - now > 1:
                regressions.append(
                    f"{record['id']}: qps {now:.1f} vs speed-adjusted baseline "
                    f"{reference:.1f} ({(now / reference - 1) * 100:.0f}%)"
                )
        # parallel_bytes_shipped (schema v5) gates the IPC payload volume of
        # dispatching scenarios: the columnar dictionary-encoded wire format
        # exists to keep this down, and an executor change that silently
        # reverts to object shipping would be invisible to wall time on small
        # runners.  Deterministic per machine, so no speed adjustment.
        now, then = (
            record.get("parallel_bytes_shipped"),
            base.get("parallel_bytes_shipped"),
        )
        # A zero baseline still gates: a scenario that never dispatched
        # suddenly shipping real payload is exactly the object-shipping
        # regression this counter exists to catch.
        if now is not None and then is not None:
            if now > then * (1 + threshold) and now - then > MIN_BYTES_REGRESSION:
                grew = f"+{(now / then - 1) * 100:.0f}%" if then else "was 0"
                regressions.append(
                    f"{record['id']}: parallel_bytes_shipped {now} vs baseline "
                    f"{then} ({grew})"
                )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--quick", action="store_true", help="1 warmup + 3 repeats")
    parser.add_argument("--warmup", type=int, default=None, help="warmup runs per scenario")
    parser.add_argument("--repeats", type=int, default=None, help="measured runs per scenario")
    parser.add_argument("--only", default=None, help="substring filter on scenario ids")
    parser.add_argument(
        "--modes",
        default=",".join(MODES),
        help="comma-separated execution modes to run (default: row,batch,parallel)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help="worker processes for parallel-mode records "
        f"(default: $REPRO_ENGINE_PARALLEL or {DEFAULT_WORKERS})",
    )
    parser.add_argument("--list", action="store_true", help="list scenario ids and exit")
    parser.add_argument(
        "--output",
        default=None,
        help=f"JSON output path (default: {os.path.relpath(DEFAULT_OUTPUT, REPO_ROOT)}; "
        "suppressed when --baseline is given unless set explicitly)",
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline JSON to diff against (CI gate)"
    )
    parser.add_argument(
        "--plan-cache",
        default=None,
        metavar="PATH",
        help="persisted compiled-plan bundle: staged before the run (cold-start "
        "scenarios skip rule compilation) and rewritten from this run's plan "
        "cache afterwards",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=0.25,
        help="relative slowdown vs baseline that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-measure suspected wall-clock regressions in isolation this "
        "many times before failing the gate (0 disables; counter regressions "
        "are deterministic and unaffected)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="enable per-plan step profiling and write hot-rule/hot-step "
        "JSON here (profiled runs pay instrumentation overhead; never "
        "combine with --baseline wall gating)",
    )
    args = parser.parse_args(argv)

    warmup = args.warmup if args.warmup is not None else 1
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 5)
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    for mode in modes:
        if mode not in MODES:
            print(f"error: unknown mode {mode!r} (choose from {MODES})", file=sys.stderr)
            return 2

    staged_plans = 0
    if args.plan_cache:
        staged_plans = plancache.load_plan_cache(args.plan_cache)
        if staged_plans:
            print(f"plan cache: staged {staged_plans} rule bundle(s) from {args.plan_cache}")

    runs = select_runs(discover_scenarios(), modes, args.only)
    if args.list:
        for scenario, mode in runs:
            print(f"{scenario['id']}@{mode}")
        return 0
    if not runs:
        print("no scenarios matched", file=sys.stderr)
        return 2

    if args.profile:
        PROFILER.enable()
    profiles: List[Dict[str, Any]] = []
    results: List[Dict[str, Any]] = []
    total_start = time.perf_counter()
    for scenario, mode in runs:
        if args.profile:
            PROFILER.reset()
        record = run_scenario(scenario, warmup, repeats, mode, args.workers)
        results.append(record)
        if args.profile:
            profiles.append({"id": record["id"], "plans": PROFILER.snapshot(top=10)})
        wall = record["wall_seconds"]["median"]
        print(f"{record['id']:84s} {wall * 1000:9.2f} ms  "
              f"{record['facts_added']:>8d} facts")
    total_wall = time.perf_counter() - total_start
    if args.profile:
        PROFILER.disable()
        with open(args.profile, "w") as handle:
            json.dump(
                {"schema_version": 1, "scenarios": profiles},
                handle, indent=2, sort_keys=False,
            )
            handle.write("\n")
        print(f"wrote plan profiles to {os.path.relpath(args.profile, os.getcwd())}")

    per_mode_sums = {
        mode: sum(
            r["wall_seconds"]["median"] for r in results if r["mode"] == mode
        )
        for mode in modes
    }
    document = {
        "schema_version": SCHEMA_VERSION,
        "mode": "quick" if args.quick else "full",
        "warmup": warmup,
        "repeats": repeats,
        "execution_modes": modes,
        "parallel_workers": args.workers,
        "python": ".".join(map(str, sys.version_info[:3])),
        "scenario_count": len(results),
        "plan_cache": {
            "staged": staged_plans,
            "hits": plancache.cache_hits(),
        },
        "scenarios": results,
        "totals": {
            "wall_seconds_median_sum": round(
                sum(r["wall_seconds"]["median"] for r in results), 6
            ),
            "wall_seconds_by_mode": {
                mode: round(total, 6) for mode, total in per_mode_sums.items()
            },
            "facts_added": sum(r["facts_added"] for r in results),
            "chase_steps": sum(r["chase_steps"] for r in results),
            "nulls_invented": sum(r["nulls_invented"] for r in results),
            "pivots_skipped": sum(r["pivots_skipped"] for r in results),
            "retractions": sum(r["retractions"] for r in results),
            "rederived": sum(r["rederived"] for r in results),
            "nulls_collected": sum(r["nulls_collected"] for r in results),
        },
    }
    print(f"\n{len(results)} records, "
          f"median-sum {document['totals']['wall_seconds_median_sum']:.3f}s, "
          f"harness wall {total_wall:.1f}s")
    if (
        "row" in modes
        and "batch" in modes
        and per_mode_sums["batch"] > 0
        and per_mode_sums["row"] > 0
    ):
        print(f"suite speedup batch vs row: "
              f"{per_mode_sums['row'] / per_mode_sums['batch']:.2f}x")
    if (
        "batch" in modes
        and "parallel" in modes
        and per_mode_sums["parallel"] > 0
        and per_mode_sums["batch"] > 0
    ):
        print(f"suite speedup parallel({args.workers}w) vs batch: "
              f"{per_mode_sums['batch'] / per_mode_sums['parallel']:.2f}x")

    if len(modes) > 1:
        mismatches = cross_mode_mismatches(results)
        if mismatches:
            print(f"\nFAIL: {len(mismatches)} cross-mode counter mismatch(es):")
            for line in mismatches:
                print("  " + line)
            return 1

    # Only a full, unfiltered, all-modes run may implicitly overwrite the
    # committed baseline; quick/filtered/single-mode runs write only with an
    # explicit --output.
    output = args.output
    if (
        output is None
        and args.baseline is None
        and not args.quick
        and not args.only
        and set(modes) == set(MODES)
    ):
        output = DEFAULT_OUTPUT
    if output:
        with open(output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {os.path.relpath(output, os.getcwd())}")

    if args.plan_cache:
        saved = plancache.save_plan_cache(args.plan_cache)
        print(f"plan cache: wrote {saved} rule bundle(s) to {args.plan_cache} "
              f"({plancache.cache_hits()} rebuild hits this run)")

    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline {args.baseline}: {error}", file=sys.stderr)
            return 2
        regressions = compare_to_baseline(
            results, baseline, args.fail_threshold, MIN_REGRESSION_SECONDS
        )
        missing = {s["id"] for s in baseline.get("scenarios", [])} - {
            r["id"] for r in results
        }
        if args.only is None and missing:
            print(f"warning: {len(missing)} baseline scenarios did not run: "
                  + ", ".join(sorted(missing)[:5]))
        if regressions and args.retries > 0:
            # Wall-clock minima on a shared runner are vulnerable to
            # sustained CPU-steal bursts that cover every repeat of the main
            # pass (the suite-level speed ratio only corrects *uniform*
            # slowness).  Before failing the gate, re-measure just the
            # suspect records in isolation and keep the best observation —
            # transient noise does not survive a second independent pass,
            # a genuine regression does, and the deterministic counter gates
            # cannot be masked because counters are identical run to run.
            by_id = {f"{s['id']}@{m}": (s, m) for s, m in runs}
            index_of = {r["id"]: i for i, r in enumerate(results)}
            suspects = sorted(
                {line.split(": ", 1)[0] for line in regressions} & by_id.keys()
            )
            for attempt in range(args.retries):
                if not regressions:
                    break
                print(f"\n{len(regressions)} suspected regression(s); "
                      f"re-measuring {len(suspects)} record(s) in isolation "
                      f"(pass {attempt + 1}/{args.retries})...")
                for rid in suspects:
                    scenario, mode = by_id[rid]
                    retry = run_scenario(scenario, warmup, repeats, mode, args.workers)
                    results[index_of[rid]] = merge_remeasure(
                        results[index_of[rid]], retry
                    )
                regressions = compare_to_baseline(
                    results, baseline, args.fail_threshold, MIN_REGRESSION_SECONDS
                )
                suspects = sorted(
                    {line.split(": ", 1)[0] for line in regressions} & by_id.keys()
                )
        if regressions:
            print(f"\nFAIL: {len(regressions)} regression(s) vs {args.baseline}:")
            for line in regressions:
                print("  " + line)
            return 1
        print(f"\nOK: no scenario regressed more than "
              f"{args.fail_threshold * 100:.0f}% vs {args.baseline}")
    shutdown_pool()
    return 0


if __name__ == "__main__":
    sys.exit(main())
