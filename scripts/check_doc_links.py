#!/usr/bin/env python
"""Fail on broken relative links in the repo's Markdown documentation.

Scans the documentation tier — ``README.md``, ``docs/*.md``, and the
package-level READMEs — for Markdown links and validates every *relative*
target against the working tree (anchors and external ``http(s)``/``mailto``
targets are ignored; absolute paths are rejected as unportable).  Run by the
CI lint job and by ``tests/test_docs_links.py``, so a file rename that
orphans a docs link fails before merge.

Usage::

    python scripts/check_doc_links.py            # checks the default set
    python scripts/check_doc_links.py FILE...    # checks specific files
"""

from __future__ import annotations

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline Markdown links: [text](target); images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

DEFAULT_DOCS = (
    ["README.md", "ROADMAP.md"]
    + sorted(glob.glob("docs/*.md", root_dir=REPO_ROOT))
    + ["benchmarks/README.md", "src/repro/engine/README.md"]
)


def check_file(path: str) -> list:
    """Broken-link messages for one Markdown file (empty when clean)."""
    problems = []
    full = os.path.join(REPO_ROOT, path)
    with open(full, encoding="utf-8") as handle:
        text = handle.read()
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        if target.startswith("/"):
            problems.append(f"{path}: absolute link {target!r} is unportable")
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(full), target.split("#", 1)[0])
        )
        if not os.path.exists(resolved):
            problems.append(f"{path}: broken relative link {target!r}")
    return problems


def main(argv) -> int:
    """Check every given (or default) doc; print problems; non-zero on any."""
    docs = argv or [doc for doc in DEFAULT_DOCS if os.path.exists(os.path.join(REPO_ROOT, doc))]
    problems = []
    for path in docs:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken doc link(s)", file=sys.stderr)
        return 1
    print(f"doc links OK ({len(docs)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
