#!/usr/bin/env python
"""CI smoke test for the query service: boot, query mix, latency ceiling.

Boots a real :class:`repro.service.QueryService` on an ephemeral port, runs
a fixed query mix over HTTP (interleaved with delta pushes, DRed
retractions, and an epoch reset), checks every response for consistency, and asserts the query p50
stays under a deliberately loose ceiling — this is a smoke gate against
"serving got 100x slower or wedged", not a benchmark (the harness's
``bench_service_concurrent.py`` scenario is the measured, baseline-gated
number).

Exit status 0 on success; prints the latency summary either way.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--p50-ceiling-ms 250]
"""

import argparse
import asyncio
import json
import statistics
import sys
import threading
import time
import urllib.parse
import urllib.request

QUERY_TEXTS = (
    "SELECT ?X WHERE { ?X rdf:type Person }",
    "SELECT ?X WHERE { ?X rdf:type Student }",
    "SELECT ?X WHERE { ?X takesCourse ?Y }",
    "SELECT ?X WHERE { ?X worksFor _:B }",
)
ROUNDS = 10


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="query-service smoke test")
    parser.add_argument(
        "--p50-ceiling-ms",
        type=float,
        default=250.0,
        help="fail if the query p50 exceeds this many milliseconds (loose by "
        "design: a smoke gate, not a benchmark)",
    )
    args = parser.parse_args(argv)

    from repro.service import QueryService
    from repro.workloads.ontologies import university_graph

    service = QueryService(
        university_graph(n_departments=1, students_per_department=5), port=0
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    if not started.wait(timeout=60):
        print("FAIL: server did not start within 60s", file=sys.stderr)
        return 1
    base = f"http://127.0.0.1:{service.port}"

    def get(path):
        with urllib.request.urlopen(base + path, timeout=60) as response:
            return json.loads(response.read())

    def get_text(path):
        with urllib.request.urlopen(base + path, timeout=60) as response:
            return response.headers.get("Content-Type", ""), response.read().decode()

    def post(path, document):
        request = urllib.request.Request(
            base + path, data=json.dumps(document).encode(), method="POST"
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read())

    failures = []
    latencies = []
    health = get("/healthz")
    if health.get("status") != "ok" or not health.get("consistent"):
        failures.append(f"unhealthy boot: {health}")

    for round_number in range(ROUNDS):
        for text in QUERY_TEXTS:
            quoted = urllib.parse.quote(text)
            start = time.perf_counter()
            response = get(f"/query?q={quoted}&mode=U")
            latencies.append(time.perf_counter() - start)
            if not response["consistent"]:
                failures.append(f"inconsistent answer for {text!r}")
            if response["cardinality"] != len(response["answers"]):
                failures.append(f"cardinality mismatch for {text!r}")
        # Interleave writer traffic: a push every other round, one epoch
        # reset mid-run.
        if round_number % 2 == 0:
            pushed = post(
                "/push",
                {"triples": [[f"smoke_{round_number}", "rdf:type", "Student"]]},
            )
            if not pushed["consistent"]:
                failures.append(f"push declared inconsistent: {pushed}")
        elif round_number > 1:
            # Retract the previous round's smoke student: the deletion path
            # (DRed) must remove it from the EDB and stay consistent.
            retracted = post(
                "/retract",
                {"triples": [[f"smoke_{round_number - 1}", "rdf:type", "Student"]]},
            )
            if retracted["removed_edb"] != 1:
                failures.append(f"retract missed its fact: {retracted}")
            if not retracted["consistent"]:
                failures.append(f"retract declared inconsistent: {retracted}")
        if round_number == ROUNDS // 2:
            post("/rematerialize", {})

    stats = get("/stats")

    # The Prometheus exposition must be present, well-formed, and carry the
    # query-latency histogram the queries above populated.
    content_type, exposition = get_text("/metrics")
    if "text/plain" not in content_type or "version=0.0.4" not in content_type:
        failures.append(f"unexpected /metrics content type: {content_type!r}")
    if "# TYPE repro_query_seconds histogram" not in exposition:
        failures.append("/metrics is missing the repro_query_seconds histogram")
    if "repro_queries_total" not in exposition:
        failures.append("/metrics is missing repro_queries_total")
    if "repro_engine_triggers_fired_total" not in exposition:
        failures.append("/metrics is missing the mirrored engine counters")
    for line in exposition.splitlines():
        if not line or line.startswith("#"):
            continue
        fields = line.rsplit(" ", 1)
        if len(fields) != 2:
            failures.append(f"malformed exposition line: {line!r}")
            continue
        try:
            float(fields[1])
        except ValueError:
            failures.append(f"non-numeric sample value: {line!r}")

    latencies.sort()
    p50 = statistics.median(latencies) * 1000
    p99 = latencies[min(len(latencies) - 1, (len(latencies) * 99) // 100)] * 1000
    print(
        f"serve-smoke: {len(latencies)} queries, p50 {p50:.2f}ms, p99 {p99:.2f}ms, "
        f"{stats['pushes']} pushes, {stats['retractions']} retractions, "
        f"epoch {stats['epoch']}, {stats['facts']} facts"
    )

    if p50 > args.p50_ceiling_ms:
        failures.append(f"p50 {p50:.2f}ms exceeds ceiling {args.p50_ceiling_ms}ms")
    if stats["epoch"] < 1:
        failures.append("epoch reset did not happen")

    asyncio.run_coroutine_threadsafe(service.stop(), loop).result(30)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=30)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
